(* mfdft command-line tool: render chips, generate single-source
   single-meter test programs, schedule assays, and run the full DFT +
   valve-sharing codesign. *)

open Cmdliner

module Chip = Mf_arch.Chip
module Assays = Mf_bioassay.Assays
module Benchmarks = Mf_chips.Benchmarks
module Pathgen = Mf_testgen.Pathgen
module Cutgen = Mf_testgen.Cutgen
module Vectors = Mf_testgen.Vectors
module Scheduler = Mf_sched.Scheduler
module Codesign = Mfdft.Codesign

(* File inputs load tolerantly: parse warnings (unknown directives,
   duplicate headers) go to stderr instead of rejecting the file. *)
let warn_diags diags =
  List.iter (fun d -> Format.eprintf "%a@." Mf_util.Diag.pp d) diags

let diags_msg file diags =
  `Msg
    (Format.asprintf "%s: %a" file Mf_util.Diag.pp
       (match Mf_util.Diag.errors diags with d :: _ -> d | [] -> List.hd diags))

let chip_conv =
  let parse s =
    match Benchmarks.by_name s with
    | Some chip -> Ok chip
    | None ->
      if Sys.file_exists s then
        match Mf_arch.Chip_io.load_diags s with
        | Ok (chip, warnings) ->
          warn_diags warnings;
          Ok chip
        | Error diags -> Error (diags_msg s diags)
      else
        Error
          (`Msg
             (Printf.sprintf "unknown chip %S (benchmarks: %s; or pass a .chip file)" s
                (String.concat ", " Benchmarks.names)))
  in
  Arg.conv (parse, fun ppf chip -> Fmt.string ppf (Chip.name chip))

let assay_conv =
  let parse s =
    match Assays.by_name s with
    | Some app -> Ok (s, app)
    | None ->
      if Sys.file_exists s then
        match Mf_bioassay.Assay_io.load_diags s with
        | Ok (app, warnings) ->
          warn_diags warnings;
          Ok (Filename.remove_extension (Filename.basename s), app)
        | Error diags -> Error (diags_msg s diags)
      else
        Error
          (`Msg
             (Printf.sprintf "unknown assay %S (bundled: %s; or pass a .assay file)" s
                (String.concat ", " Assays.names)))
  in
  Arg.conv (parse, fun ppf (name, _) -> Fmt.string ppf name)

let chip_arg =
  Arg.(required & opt (some chip_conv) None & info [ "chip" ] ~docv:"CHIP" ~doc:"Benchmark chip (ivd_chip, ra30_chip, mrna_chip).")

let assay_arg =
  Arg.(required & opt (some assay_conv) None & info [ "assay" ] ~docv:"ASSAY" ~doc:"Bioassay (ivd, pid, cpa).")

(* ------------------------------------------------------------------ *)

(* Shared flags and output for the static-verification commands. *)

let strict_arg =
  Arg.(
    value
    & flag
    & info [ "strict" ]
        ~doc:"Exit non-zero on warnings too, not only on errors (CI gating).")

let json_arg =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as a JSON array, one per line.")

let emit_diags ~json ~strict diags =
  if json then print_string (Mf_util.Diag.json_list diags)
  else Format.printf "%a@." Mf_util.Diag.pp_list diags;
  exit (Mf_util.Diag.exit_code ~strict diags)

let lint_cmd =
  let run chip strict json = emit_diags ~json ~strict (Mf_verify.Lint.chip chip) in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically check a chip netlist (dangling channels, unwired ports, valve placement, \
          reachability, DFT consistency, control-line numbering; codes MF0xx).")
    Term.(const run $ chip_arg $ strict_arg $ json_arg)

let verify_cmd =
  let run chip cert_path strict json =
    match Mf_verify.Cert.load cert_path with
    | Error diags -> emit_diags ~json ~strict diags
    | Ok cert ->
      emit_diags ~json ~strict (Mf_verify.Verify.certificate chip cert)
  in
  let cert_path =
    Arg.(
      required
      & opt (some file) None
      & info [ "cert" ] ~docv:"FILE" ~doc:"Certificate file written by codesign --cert.")
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Re-prove a DFT test certificate against a chip with graph reachability and an \
          independent fault simulation — no ILP/LP/PSO involvement (codes MF1xx/MF2xx, plus \
          the MF0xx lints).")
    Term.(const run $ chip_arg $ cert_path $ strict_arg $ json_arg)

let list_cmd =
  let run () =
    Format.printf "chips : %s@." (String.concat ", " Benchmarks.names);
    Format.printf "assays: %s@." (String.concat ", " Assays.names)
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmark chips and assays.") Term.(const run $ const ())

let render_cmd =
  let run chip =
    Format.printf "%a@.%s@." Chip.pp chip (Chip.render chip)
  in
  Cmd.v (Cmd.info "render" ~doc:"Draw a chip's layout.") Term.(const run $ chip_arg)

let deadline_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "deadline" ] ~docv:"SECS"
        ~doc:
          "Wall-clock budget in seconds. When it expires, solvers degrade gracefully and \
           return their best feasible result so far instead of failing.")

(* [MFDFT_PROF=1] per-stage wall-time/pivot breakdown, printed to stderr
   after the solver-heavy commands; a no-op otherwise *)
let prof_dump () =
  match Mf_util.Prof.report () with
  | None -> ()
  | Some table -> Format.eprintf "@.== MFDFT_PROF stage breakdown ==@.%s@." table

let testgen_cmd =
  let run chip node_limit deadline =
    let budget = Option.map Mf_util.Budget.of_seconds deadline in
    match Pathgen.generate ~node_limit ?budget chip with
    | Error f ->
      Format.eprintf "error: %a@." Mf_util.Fail.pp f;
      exit 1
    | Ok config ->
      if config.Pathgen.degraded then
        Format.printf "note: ILP budget exhausted; configuration from the greedy heuristic@.";
      let aug = Pathgen.apply chip config in
      let cuts = Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port in
      let suite = Vectors.of_config config cuts in
      let suite = if Vectors.is_valid aug suite then suite else Mf_testgen.Repair.run aug suite in
      let ports = Chip.ports chip in
      Format.printf "source port: %s  meter port: %s@."
        ports.(config.Pathgen.src_port).Chip.port_name
        ports.(config.Pathgen.dst_port).Chip.port_name;
      Format.printf "DFT valves added: %d  test paths: %d  cuts: %d  vectors: %d@."
        (List.length config.Pathgen.added_edges)
        (List.length suite.Vectors.path_edges)
        (List.length suite.Vectors.cut_valves)
        (Vectors.count suite);
      Format.printf "%s@." (Chip.render aug);
      let report = Vectors.validate aug suite in
      Format.printf "fault simulation: %a@." Mf_faults.Coverage.pp report;
      prof_dump ();
      if not (Mf_faults.Coverage.complete report) then exit 2
  in
  let node_limit =
    Arg.(value & opt int 1200 & info [ "ilp-budget" ] ~docv:"NODES" ~doc:"ILP node budget.")
  in
  Cmd.v
    (Cmd.info "testgen" ~doc:"Generate the single-source single-meter test program for a chip.")
    Term.(const run $ chip_arg $ node_limit $ deadline_arg)

let schedule_cmd =
  let run chip (assay_name, app) transport_cost verbose =
    let options = { Scheduler.default_options with transport_cost } in
    match Scheduler.run ~options chip app with
    | Error f ->
      Format.eprintf "schedule failed: %a@." Mf_sched.Schedule.pp_failure f;
      exit 1
    | Ok s ->
      Format.printf "%s on %s: %a@." assay_name (Chip.name chip) Mf_sched.Schedule.pp s;
      if verbose then
        List.iter
          (fun ev ->
            match ev with
            | Mf_sched.Schedule.Op_started { op; device; time } ->
              Format.printf "  t=%4d  start op %d on device %d@." time op device
            | Mf_sched.Schedule.Op_finished { op; device; time } ->
              Format.printf "  t=%4d  finish op %d on device %d@." time op device
            | Mf_sched.Schedule.Transport_started { unit_id; time; finish; _ } ->
              Format.printf "  t=%4d  move fluid %d (arrives %d)@." time unit_id finish
            | Mf_sched.Schedule.Unit_stored { unit_id; edge; time } ->
              Format.printf "  t=%4d  store fluid %d in channel %d@." time unit_id edge
            | Mf_sched.Schedule.Unit_parked { unit_id; port_node; time } ->
              Format.printf "  t=%4d  park fluid %d at port node %d@." time unit_id port_node)
          s.Mf_sched.Schedule.events
  in
  let transport_cost =
    Arg.(value & opt int 1 & info [ "transport-cost" ] ~docv:"TICKS" ~doc:"Ticks per channel segment.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the event log.") in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Schedule an assay on a chip and report the execution time.")
    Term.(const run $ chip_arg $ assay_arg $ transport_cost $ verbose)

let codesign_cmd =
  let run chip (assay_name, app) full seed jobs ilp_jobs report deadline ckpt_path ckpt_every
      resume stop_after chaos cert_prefix =
    (match chaos with
     | None -> ()
     | Some rate ->
       Mf_util.Chaos.set (Some { Mf_util.Chaos.rate; seed = Mf_util.Chaos.default_seed }));
    let budget = Option.map Mf_util.Budget.of_seconds deadline in
    let checkpoint =
      match ckpt_path with
      | None ->
        if resume || stop_after <> None then begin
          Format.eprintf "error: --resume/--stop-after require --checkpoint FILE@.";
          exit 1
        end;
        None
      | Some path -> Some { Codesign.path; every = ckpt_every; resume; stop_after }
    in
    let jobs = match jobs with Some j -> max 1 j | None -> 1 in
    let ilp_jobs = max 1 ilp_jobs in
    let params =
      let base = if full then Codesign.default_params else Codesign.quick_params in
      { base with Codesign.seed; jobs; ilp_jobs }
    in
    Format.printf "codesign %s / %s (%s budgets, seed %d, %d job%s)...@." (Chip.name chip)
      assay_name
      (if full then "paper-scale" else "quick")
      seed jobs
      (if jobs = 1 then "" else "s");
    match Codesign.run ~params ?budget ?checkpoint chip app with
    | Error f ->
      Format.eprintf "error: %a@." Mf_util.Fail.pp f;
      exit 1
    | Ok r ->
      let pp_time ppf = function Some t -> Fmt.pf ppf "%d s" t | None -> Fmt.pf ppf "n/a" in
      Format.printf "%s@." (Chip.render r.Codesign.augmented);
      Format.printf "DFT valves: %d  sharing: %d  vectors: %d  runtime: %.1f s@."
        r.Codesign.n_dft_valves r.Codesign.n_shared r.Codesign.n_vectors_dft r.Codesign.runtime;
      Format.printf "exec original: %a   DFT free-control: %a   DFT no-PSO: %a   DFT+PSO: %a@."
        pp_time r.Codesign.exec_original pp_time r.Codesign.exec_dft_unshared pp_time
        r.Codesign.exec_dft_no_pso pp_time r.Codesign.exec_final;
      (match r.Codesign.degradations with
       | [] -> ()
       | ds ->
         Format.printf "degraded result (still valid):@.";
         List.iter (fun d -> Format.printf "  - %s@." (Codesign.degradation_to_string d)) ds);
      (* automatic post-codesign verification: the independent checker must
         accept the result (degraded or not) before we hand it out *)
      let diags = Codesign.verify r in
      let n_err, n_warn = Mf_util.Diag.count diags in
      Format.printf "verification (independent re-proof): %d error(s), %d warning(s)@." n_err
        n_warn;
      List.iter (fun d -> Format.printf "  %a@." Mf_util.Diag.pp d) diags;
      (match cert_prefix with
       | None -> ()
       | Some prefix ->
         let chip_path = prefix ^ ".chip" and cert_path = prefix ^ ".cert" in
         Mf_arch.Chip_io.save chip_path r.Codesign.shared;
         Mf_verify.Cert.save cert_path (Codesign.certificate r);
         Format.printf "certificate written: %s + %s (re-check with: mfdft verify --chip %s --cert %s)@."
           chip_path cert_path chip_path cert_path);
      (match report with
       | None -> ()
       | Some path ->
         Mfdft.Report.save path r;
         Format.printf "report written to %s@." path);
      prof_dump ();
      if n_err > 0 then exit 2
  in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-scale PSO budgets (100 iterations).") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PSO random seed.") in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Evaluate PSO particles on $(docv) domains. Results are identical for any value; \
             only the wall clock changes. Defaults to 1 (serial).")
  in
  let ilp_jobs =
    Arg.(
      value
      & opt int 1
      & info [ "ilp-jobs" ] ~docv:"N"
          ~doc:
            "Parallelise inside each ILP branch-and-bound (batched relaxation solves) on \
             $(docv) domains during pool construction; pool attempts then run sequentially. \
             Results are bit-identical for any value. Defaults to 1.")
  in
  let report =
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc:"Write a Markdown report.")
  in
  let ckpt_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Save the outer-PSO state to $(docv) periodically so the run can be resumed.")
  in
  let ckpt_every =
    Arg.(
      value
      & opt int 5
      & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Checkpoint every $(docv) outer iterations.")
  in
  let resume =
    Arg.(
      value
      & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the file given with --checkpoint. The resumed run is bit-identical to \
             an uninterrupted run with the same seed and budgets.")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) outer iterations, saving a checkpoint (for testing \
             interrupted-run recovery).")
  in
  let chaos =
    Arg.(
      value
      & opt (some float) None
      & info [ "chaos" ] ~docv:"RATE"
          ~doc:
            "Software fault injection: make each solver call fail with probability $(docv) \
             (same as MFDFT_CHAOS). Exercises the degradation paths.")
  in
  let cert_prefix =
    Arg.(
      value
      & opt (some string) None
      & info [ "cert" ] ~docv:"PREFIX"
          ~doc:
            "Write the result as $(docv).chip (the shared architecture) plus $(docv).cert \
             (its test certificate), re-checkable offline with $(b,mfdft verify).")
  in
  Cmd.v
    (Cmd.info "codesign" ~doc:"Run the full DFT + valve-sharing codesign flow (Sec. 4.2).")
    Term.(
      const run $ chip_arg $ assay_arg $ full $ seed $ jobs $ ilp_jobs $ report $ deadline_arg
      $ ckpt_path $ ckpt_every $ resume $ stop_after $ chaos $ cert_prefix)

let repair_cmd =
  let module Reconfig = Mf_repair.Reconfig in
  let module Fault = Mf_faults.Fault in
  (* "sa0:EDGE,sa1:VALVE,leak:VALVE,valves:N" — [valves:N] draws N seed-stable
     stuck-open sites the way the chaos harness does *)
  let parse_faults chip ~seed spec =
    let item s =
      match String.split_on_char ':' (String.trim s) with
      | [ "sa0"; e ] -> (
          match int_of_string_opt e with
          | Some e -> Ok [ Fault.Stuck_at_0 e ]
          | None -> Error (Printf.sprintf "bad edge id %S" e))
      | [ "sa1"; v ] -> (
          match int_of_string_opt v with
          | Some v -> Ok [ Fault.Stuck_at_1 v ]
          | None -> Error (Printf.sprintf "bad valve id %S" v))
      | [ "leak"; v ] -> (
          match int_of_string_opt v with
          | Some v -> Ok [ Fault.Leak v ]
          | None -> Error (Printf.sprintf "bad valve id %S" v))
      | [ "valves"; n ] -> (
          match int_of_string_opt n with
          | Some n ->
            Ok
              (List.map
                 (fun v -> Fault.Stuck_at_1 v)
                 (Mf_util.Chaos.sample_sites ~seed ~count:n
                    ~n_sites:(Chip.n_valves chip)))
          | None -> Error (Printf.sprintf "bad count %S" n))
      | _ ->
        Error
          (Printf.sprintf "bad fault %S (expected sa0:EDGE, sa1:VALVE, leak:VALVE or valves:N)" s)
    in
    let rec go acc = function
      | [] -> Ok (List.concat (List.rev acc))
      | s :: rest -> ( match item s with Ok fs -> go (fs :: acc) rest | Error _ as e -> e)
    in
    go [] (List.filter (fun s -> String.trim s <> "") (String.split_on_char ',' spec))
  in
  let run chip assay_opt cert_path faults_spec escalate_spec seed jobs deadline ckpt_path
      ckpt_every resume stop_after out_prefix =
    let budget = Option.map Mf_util.Budget.of_seconds deadline in
    let checkpoint =
      match ckpt_path with
      | None ->
        if resume || stop_after <> None then begin
          Format.eprintf "error: --resume/--stop-after require --checkpoint FILE@.";
          exit 1
        end;
        None
      | Some path -> Some { Reconfig.path; every = ckpt_every; resume; stop_after }
    in
    (* the deployed suite: a shipped certificate, or a fresh in-process
       baseline on the (then DFT-augmented) chip *)
    let baseline =
      match cert_path with
      | Some path -> (
          match Mf_verify.Cert.load path with
          | Error diags ->
            Format.eprintf "error: %a@." Mf_util.Diag.pp
              (match Mf_util.Diag.errors diags with d :: _ -> d | [] -> List.hd diags);
            exit 1
          | Ok cert ->
            let s = cert.Mf_verify.Cert.suite in
            Ok
              ( chip,
                {
                  Vectors.source_port = s.Mf_verify.Cert.source_port;
                  meter_port = s.Mf_verify.Cert.meter_port;
                  path_edges = s.Mf_verify.Cert.path_edges;
                  cut_valves = s.Mf_verify.Cert.cut_valves;
                } ))
      | None -> (
          match Pathgen.generate ~node_limit:800 ?budget chip with
          | Error f -> Error f
          | Ok config ->
            let aug = Pathgen.apply chip config in
            let cuts =
              Cutgen.generate aug ~source:config.Pathgen.src_port
                ~meter:config.Pathgen.dst_port
            in
            let suite = Vectors.of_config config cuts in
            let suite =
              if Vectors.is_valid aug suite then suite else Mf_testgen.Repair.run aug suite
            in
            Ok (aug, suite))
    in
    match baseline with
    | Error f ->
      Format.eprintf "error: %a@." Mf_util.Fail.pp f;
      exit 1
    | Ok (chip, suite) ->
      let faults =
        match faults_spec with
        | Some spec -> (
            match parse_faults chip ~seed spec with
            | Ok fs -> fs
            | Error msg ->
              Format.eprintf "error: --faults: %s@." msg;
              exit 1)
        | None ->
          List.map
            (fun v -> Fault.Stuck_at_1 v)
            (Mf_util.Chaos.valve_fault_sites ~n_sites:(Chip.n_valves chip))
      in
      if faults = [] then begin
        Format.eprintf
          "error: no faults: pass --faults SPEC or export MFDFT_CHAOS=valve-faults:N@.";
        exit 1
      end;
      let more_faults =
        match escalate_spec with
        | None -> None
        | Some spec -> (
            match parse_faults chip ~seed spec with
            | Ok fs -> Some (fun ~round -> if round = 1 then fs else [])
            | Error msg ->
              Format.eprintf "error: --escalate: %s@." msg;
              exit 1)
      in
      let params = { Reconfig.default_params with Reconfig.seed; jobs = max 1 jobs } in
      Format.printf "repair %s: %d fault(s), %d vector(s) deployed (seed %d, %d job%s)...@."
        (Chip.name chip) (List.length faults) (Vectors.count suite) seed params.Reconfig.jobs
        (if params.Reconfig.jobs = 1 then "" else "s");
      (match
         Reconfig.repair ~params ?budget ?checkpoint
           ?app:(Option.map snd assay_opt) ?more_faults chip suite faults
       with
      | Error f ->
        Format.eprintf "error: %a@." Mf_util.Fail.pp f;
        exit 1
      | Ok r ->
        let st = r.Reconfig.stats in
        List.iter
          (fun f -> Format.printf "fault: %a@." (Fault.pp r.Reconfig.chip) f)
          r.Reconfig.faults;
        Format.printf
          "rounds: %d  damaged: %d  reused: %d  added: %d  candidates: %d  runtime: %.2f s@."
          st.Reconfig.rounds st.Reconfig.damaged st.Reconfig.reused st.Reconfig.added
          st.Reconfig.candidates st.Reconfig.runtime;
        Format.printf "coverage on degraded chip: %a@." Mf_faults.Coverage.pp
          r.Reconfig.coverage;
        List.iter
          (fun f ->
            Format.printf "waived (proved untestable): %a@." (Fault.pp r.Reconfig.chip) f)
          r.Reconfig.untestable;
        (match (r.Reconfig.exec_before, r.Reconfig.exec_after) with
         | Some before, Some after ->
           Format.printf "assay makespan: %d -> %d ticks@." before after
         | _ -> ());
        (match r.Reconfig.degradations with
         | [] -> ()
         | ds ->
           Format.printf "degraded result (still valid):@.";
           List.iter
             (fun d -> Format.printf "  - %s@." (Reconfig.degradation_to_string d))
             ds);
        let n_err, n_warn = Mf_util.Diag.count r.Reconfig.diags in
        Format.printf "re-certification (independent): %d error(s), %d warning(s)@." n_err
          n_warn;
        List.iter (fun d -> Format.printf "  %a@." Mf_util.Diag.pp d) r.Reconfig.diags;
        (match out_prefix with
         | None -> ()
         | Some prefix ->
           let chip_path = prefix ^ ".chip" and cert_path = prefix ^ ".cert" in
           Mf_arch.Chip_io.save chip_path r.Reconfig.chip;
           Mf_verify.Cert.save cert_path r.Reconfig.cert;
           Format.printf
             "certificate written: %s + %s (re-check with: mfdft verify --chip %s --cert %s)@."
             chip_path cert_path chip_path cert_path);
        prof_dump ();
        if n_err > 0 then exit 2)
  in
  let assay_opt =
    Arg.(
      value
      & opt (some assay_conv) None
      & info [ "assay" ] ~docv:"ASSAY"
          ~doc:"Report the assay's makespan before and after repair.")
  in
  let cert_path =
    Arg.(
      value
      & opt (some file) None
      & info [ "cert" ] ~docv:"FILE"
          ~doc:
            "Deployed certificate to repair (from codesign --cert or a previous repair). \
             Without it a fresh baseline suite is generated in-process.")
  in
  let faults_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Observed faults: comma-separated sa0:EDGE, sa1:VALVE, leak:VALVE, or valves:N \
             (N seed-stable stuck-open sites, as the chaos harness injects). Defaults to the \
             MFDFT_CHAOS=valve-faults:N environment mode.")
  in
  let escalate_spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "escalate" ] ~docv:"SPEC"
          ~doc:
            "Additional faults (same syntax as --faults) reported after the first repair \
             round completes — exercises the online escalation loop.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for valves:N sampling.")
  in
  let jobs =
    Arg.(
      value
      & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Generate candidates on $(docv) domains. Results are identical for any value.")
  in
  let ckpt_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Save the repair state to $(docv) after rounds so the run can be resumed.")
  in
  let ckpt_every =
    Arg.(
      value
      & opt int 1
      & info [ "checkpoint-every" ] ~docv:"N" ~doc:"Checkpoint every $(docv) repair rounds.")
  in
  let resume =
    Arg.(
      value
      & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the file given with --checkpoint. The resumed repair is bit-identical \
             to an uninterrupted run; a missing or corrupt file is a hard error.")
  in
  let stop_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "stop-after" ] ~docv:"N"
          ~doc:"Stop after $(docv) repair rounds, saving a checkpoint (interrupted-run testing).")
  in
  let out_prefix =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"PREFIX"
          ~doc:
            "Write the repaired result as $(docv).chip plus $(docv).cert, re-checkable \
             offline with $(b,mfdft verify).")
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Incrementally repair a deployed test suite against observed valve/channel faults \
          and re-certify it — damage analysis, warm-started set-cover, typed degradation, \
          never a from-scratch codesign.")
    Term.(
      const run $ chip_arg $ assay_opt $ cert_path $ faults_spec $ escalate_spec $ seed $ jobs
      $ deadline_arg $ ckpt_path $ ckpt_every $ resume $ stop_after $ out_prefix)

let gen_cmd =
  let run family_name size seed out =
    match Mf_chips.Families.by_name family_name with
    | None ->
      Format.eprintf "error: unknown family %S (families: %s)@." family_name
        (String.concat ", " Mf_chips.Families.names);
      exit 1
    | Some f ->
      (* chip and assay share one seeded stream, exactly as the property
         corpus derives its cases: the emitted pair is reproducible from
         (family, size, seed) alone *)
      let rng = Mf_util.Rng.create ~seed in
      let chip = f.Mf_chips.Families.generate_size ~size rng in
      let profile =
        match f.Mf_chips.Families.profile with
        | Mf_chips.Families.Balanced -> Mf_bioassay.Synth_assay.Balanced
        | Mf_chips.Families.Storage_pressure -> Mf_bioassay.Synth_assay.Storage_pressure
      in
      let spec =
        Mf_bioassay.Synth_assay.spec_of_size ~profile (f.Mf_chips.Families.assay_ops ~size)
      in
      let assay = Mf_bioassay.Synth_assay.generate ~spec rng in
      let chip_path = out ^ ".chip" and assay_path = out ^ ".assay" in
      Mf_arch.Chip_io.save chip_path chip;
      Mf_bioassay.Assay_io.save assay_path assay;
      Format.printf "wrote %s (%d ports, %d valves) + %s (%d ops)@." chip_path
        (Array.length (Chip.ports chip))
        (Array.length (Chip.valves chip))
        assay_path
        (Mf_bioassay.Seqgraph.n_ops assay)
  in
  let family_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "family" ] ~docv:"FAMILY"
          ~doc:
            (Printf.sprintf "Chip family (%s)."
               (String.concat ", " Mf_chips.Families.names)))
  in
  let size_arg =
    Arg.(value & opt int 8 & info [ "size" ] ~docv:"N" ~doc:"Family size knob.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"PREFIX"
          ~doc:"Write $(docv).chip and $(docv).assay, loadable by every other subcommand.")
  in
  Cmd.v
    (Cmd.info "gen"
       ~doc:
         "Generate a chip + matching synthetic assay from a parametric family (ring, fpva, \
          storage); deterministic in --seed.")
    Term.(const run $ family_arg $ size_arg $ seed_arg $ out_arg)

let export_cmd =
  let run chip assay_opt out_dir =
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    let write name contents =
      let path = Filename.concat out_dir name in
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents);
      Format.printf "wrote %s@." path
    in
    write "chip.svg" (Mf_viz.Svg.chip chip);
    let layout = Mf_control.Control.synthesize chip in
    write "control.svg" (Mf_viz.Svg.control_layer chip layout);
    (match Mf_testgen.Pathgen.generate ~node_limit:600 chip with
     | Error f -> Format.eprintf "testgen failed: %a@." Mf_util.Fail.pp f
     | Ok config ->
       let aug = Mf_testgen.Pathgen.apply chip config in
       write "chip_dft.svg" (Mf_viz.Svg.chip aug);
       write "control_dft.svg" (Mf_viz.Svg.control_layer aug (Mf_control.Control.synthesize aug)));
    match assay_opt with
    | None -> ()
    | Some (assay_name, app) -> (
        match Scheduler.run chip app with
        | Error f -> Format.eprintf "schedule failed: %a@." Mf_sched.Schedule.pp_failure f
        | Ok s -> write (Printf.sprintf "schedule_%s.svg" assay_name) (Mf_viz.Svg.schedule app s))
  in
  let assay_opt =
    Arg.(value & opt (some assay_conv) None & info [ "assay" ] ~docv:"ASSAY" ~doc:"Also export a schedule Gantt chart.")
  in
  let out_dir =
    Arg.(value & opt string "svg-out" & info [ "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Export SVG renderings (flow layer, control layer, schedule).")
    Term.(const run $ chip_arg $ assay_opt $ out_dir)

(* ------------------------------------------------------------------ *)

(* Serve mode: a persistent daemon with a content-addressed result cache
   (see DESIGN.md Sec. 16), plus a thin line-protocol client and the local
   fingerprint printer. *)

module Serve = Mf_serve.Server
module Sjson = Mf_serve.Json
module Sproto = Mf_serve.Protocol

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket path (default mfdft.sock; ignored with $(b,--tcp)).")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT" ~doc:"Use loopback TCP on this port instead of a Unix socket.")

let fp_options_args =
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Paper-scale PSO budgets instead of the quick CI budgets.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PSO random seed.")
  in
  (full, seed)

let serve_cmd =
  let run socket tcp state jobs mem_cap disk_cap ckpt_every =
    let endpoint =
      match (socket, tcp) with
      | _, Some port -> Serve.Tcp port
      | Some path, None -> Serve.Unix_socket path
      | None, None -> Serve.Unix_socket "mfdft.sock"
    in
    let jobs = match jobs with Some j -> max 1 j | None -> 1 in
    Serve.run
      {
        Serve.endpoint;
        state_dir = state;
        jobs;
        mem_capacity = mem_cap;
        disk_capacity = disk_cap;
        checkpoint_every = ckpt_every;
      }
  in
  let state_arg =
    Arg.(
      value & opt string "mfdft-state"
      & info [ "state" ] ~docv:"DIR"
          ~doc:"State directory: result cache, persisted job specs and checkpoints.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs" ] ~docv:"N" ~doc:"Worker domains shared across all jobs (default 1).")
  in
  let mem_arg =
    Arg.(value & opt int 256 & info [ "mem-cache" ] ~docv:"N" ~doc:"In-memory cache entries.")
  in
  let disk_arg =
    Arg.(value & opt int 4096 & info [ "disk-cache" ] ~docv:"N" ~doc:"On-disk cache entries.")
  in
  let ckpt_arg =
    Arg.(
      value & opt int 1
      & info [ "checkpoint-every" ] ~docv:"N"
          ~doc:"Snapshot running jobs every N outer iterations (crash-recovery granularity).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the DFT-as-a-service daemon: a job queue over one shared domain pool with a \
          content-addressed result cache and crash recovery.")
    Term.(
      const run $ socket_arg $ tcp_arg $ state_arg $ jobs_arg $ mem_arg $ disk_arg $ ckpt_arg)

let source_conv kind known =
  let parse s =
    if List.mem s known then Ok (Sproto.Name s)
    else if Sys.file_exists s then
      Ok (Sproto.Text (In_channel.with_open_text s In_channel.input_all))
    else
      Error
        (`Msg
           (Printf.sprintf "unknown %s %S (known: %s; or pass a file)" kind s
              (String.concat ", " known)))
  in
  let print ppf = function
    | Sproto.Name n -> Fmt.string ppf n
    | Sproto.Text _ -> Fmt.string ppf "<inline>"
  in
  Arg.conv (parse, print)

let chip_source_arg =
  Arg.(
    value
    & opt (some (source_conv "chip" Benchmarks.names)) None
    & info [ "chip" ] ~docv:"CHIP" ~doc:"Benchmark chip name or a .chip file (sent inline).")

let assay_source_arg =
  Arg.(
    value
    & opt (some (source_conv "assay" Assays.names)) None
    & info [ "assay" ] ~docv:"ASSAY" ~doc:"Assay name or a .assay file (sent inline).")

let submit_cmd =
  let run socket tcp raw chip assay full seed priority deadline no_wait =
    let addr =
      match (socket, tcp) with
      | _, Some port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)
      | Some path, None -> Unix.ADDR_UNIX path
      | None, None -> Unix.ADDR_UNIX "mfdft.sock"
    in
    let domain = match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET in
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    (try Unix.connect fd addr
     with Unix.Unix_error (e, _, _) ->
       Format.eprintf "error: cannot connect: %s@." (Unix.error_message e);
       exit 1);
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let send line =
      output_string oc line;
      output_char oc '\n';
      flush oc
    in
    let request =
      match raw with
      | Some line -> line
      | None ->
        let need name = function
          | Some v -> v
          | None ->
            Format.eprintf "error: --%s is required (or use --raw)@." name;
            exit 1
        in
        let spec =
          {
            Sproto.chip = need "chip" chip;
            assay = need "assay" assay;
            options = { Mf_serve.Fingerprint.full; seed };
            priority;
            deadline;
            wait = not no_wait;
          }
        in
        (match (Sproto.submit_to_json spec, deadline) with
         | Sjson.Obj kvs, Some d -> Sjson.to_line (Sjson.Obj (kvs @ [ ("deadline", Sjson.Num d) ]))
         | j, _ -> Sjson.to_line j)
    in
    send request;
    (* print response lines until the payload (or an error) terminates the
       exchange; --raw and --no-wait exchanges end sooner *)
    let rec pump () =
      match input_line ic with
      | exception (End_of_file | Sys_error _) -> 0
      | line ->
        print_endline line;
        (match Sjson.parse line with
         | Error _ -> pump ()
         | Ok j ->
           if Sjson.str_field "type" j = Some "result" then 0
           else if Sjson.member "ok" j = Some (Sjson.Bool false) then 1
           else if raw <> None then 0
           else if no_wait && Sjson.member "cached" j = Some (Sjson.Bool false) then 0
           else pump ())
    in
    let code = pump () in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if code <> 0 then exit code
  in
  let raw_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"LINE"
          ~doc:"Send this protocol line verbatim (e.g. '{\"cmd\":\"stats\"}') and print the reply.")
  in
  let priority_arg =
    Arg.(value & opt int 0 & info [ "priority" ] ~docv:"N" ~doc:"Higher runs first (default 0).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget; budgeted jobs are never cached or deduplicated.")
  in
  let no_wait_arg =
    Arg.(
      value & flag
      & info [ "no-wait" ] ~doc:"Acknowledge only; poll later with --raw '{\"cmd\":\"result\",...}'.")
  in
  let full_arg, seed_arg = fp_options_args in
  Cmd.v
    (Cmd.info "submit" ~doc:"Submit a codesign job to a running serve daemon.")
    Term.(
      const run $ socket_arg $ tcp_arg $ raw_arg $ chip_source_arg $ assay_source_arg
      $ full_arg $ seed_arg $ priority_arg $ deadline_arg $ no_wait_arg)

let fingerprint_cmd =
  let run chip (_, app) full seed =
    print_endline
      (Mf_serve.Fingerprint.digest ~chip ~assay:app ~options:{ Mf_serve.Fingerprint.full; seed })
  in
  let full_arg, seed_arg = fp_options_args in
  Cmd.v
    (Cmd.info "fingerprint"
       ~doc:
         "Print the canonical content fingerprint of a chip + assay + options submission — \
          the serve cache's address, computed over the parsed representation.")
    Term.(const run $ chip_arg $ assay_arg $ full_arg $ seed_arg)

let () =
  let info =
    Cmd.info "mfdft" ~version:"1.0.0"
      ~doc:"Design-for-testability for continuous-flow microfluidic biochips (DAC 2018 reproduction)."
  in
  let group =
    Cmd.group info
      [ list_cmd; render_cmd; gen_cmd; lint_cmd; verify_cmd; testgen_cmd; schedule_cmd;
        codesign_cmd; repair_cmd; export_cmd; serve_cmd; submit_cmd; fingerprint_cmd ]
  in
  (* One-line diagnostics instead of backtraces: anything the commands do
     not handle themselves surfaces as "mfdft: error: ..." with exit 3. *)
  let code =
    try Cmd.eval ~catch:false group
    with e ->
      Format.eprintf "mfdft: error: %s@." (Printexc.to_string e);
      3
  in
  exit code
