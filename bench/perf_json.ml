(* Machine-readable record of one [bench -- perf] run, plus the committed
   baseline it is gated against (BENCH_ilp.json); likewise for
   [bench -- sched] and BENCH_sched.json.

   The repo deliberately carries no JSON dependency, so this module ships a
   writer and a small recursive-descent parser for exactly the subset the
   schemas use: objects, arrays, strings (escaped quote and backslash only),
   numbers and null. *)

type entry = {
  chip : string;
  wall_ms : float;
  pivots : int; (* primal + dual *)
  dual_pivots : int;
  nodes : int; (* branch-and-bound nodes explored, after presolve *)
  warm_eligible : int;
  warm_taken : int;
  cache_hits : int;
  phase1_solves : int;
  presolve_fixed : int; (* variables fixed by presolve across all solves *)
  cover_cuts : int; (* root knapsack cover cuts installed *)
  objectives : float option list; (* per pool attempt; None = attempt failed *)
}

type doc = { jobs : int; cores : int; entries : entry list }

let schema = "mfdft-bench-ilp-v2"

(* Every document records both the parallelism the run was configured with
   ([jobs]) and what the machine offered ([Domain.recommended_domain_count],
   saved as [cores]) — so a baseline produced on a single-core runner is
   recognisable as such when someone reads the numbers on a wider box. *)
let this_cores () = Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* writer *)

let save path doc =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"schema\": \"%s\",\n  \"jobs\": %d,\n  \"cores\": %d,\n  \"entries\": [\n" schema
    doc.jobs doc.cores;
  List.iteri
    (fun i e ->
      out "    {\"chip\": \"%s\", \"wall_ms\": %.1f, \"pivots\": %d, \"dual_pivots\": %d,\n"
        e.chip e.wall_ms e.pivots e.dual_pivots;
      out "     \"nodes\": %d, \"warm_eligible\": %d, \"warm_taken\": %d, \"cache_hits\": %d,\n"
        e.nodes e.warm_eligible e.warm_taken e.cache_hits;
      out "     \"phase1_solves\": %d, \"presolve_fixed\": %d, \"cover_cuts\": %d,\n"
        e.phase1_solves e.presolve_fixed e.cover_cuts;
      out "     \"objectives\": [%s]}%s\n"
        (String.concat ", "
           (List.map
              (function None -> "null" | Some o -> Printf.sprintf "%.6f" o)
              e.objectives))
        (if i = List.length doc.entries - 1 then "" else ","))
    doc.entries;
  out "  ]\n}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* parser *)

type json =
  | J_null
  | J_num of float
  | J_str of string
  | J_arr of json list
  | J_obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some d when d = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some (('"' | '\\') as c) ->
           Buffer.add_char b c;
           advance ();
           go ()
         | _ -> fail "unsupported escape")
      | Some c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> J_str (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        J_obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        J_obj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        J_arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        J_arr (items [])
      end
    | Some 'n' ->
      if !pos + 4 <= n && String.sub s !pos 4 = "null" then begin
        pos := !pos + 4;
        J_null
      end
      else fail "expected null"
    | Some ('0' .. '9' | '-') -> J_num (parse_number ())
    | _ -> fail "unexpected character"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | J_obj kvs ->
    (match List.assoc_opt name kvs with
     | Some v -> v
     | None -> raise (Bad ("missing field " ^ name)))
  | _ -> raise (Bad ("not an object looking for " ^ name))

(* Tolerant lookup for fields added after a baseline was committed: a
   missing key loads as the given default instead of failing, so older
   BENCH_*.json files keep loading until their next deliberate refresh. *)
let field_opt name = function J_obj kvs -> List.assoc_opt name kvs | _ -> None

let as_num = function J_num f -> f | _ -> raise (Bad "expected number")
let as_int j = int_of_float (as_num j)
let as_str = function J_str s -> s | _ -> raise (Bad "expected string")
let as_arr = function J_arr l -> l | _ -> raise (Bad "expected array")
let int_opt name ~default j = match field_opt name j with Some v -> as_int v | None -> default

let load path : (doc, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match parse text with
    | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)
    | j ->
      (match
         let s = as_str (field "schema" j) in
         if s <> schema then raise (Bad ("unknown schema " ^ s));
         let entry e =
           {
             chip = as_str (field "chip" e);
             wall_ms = as_num (field "wall_ms" e);
             pivots = as_int (field "pivots" e);
             dual_pivots = as_int (field "dual_pivots" e);
             nodes = as_int (field "nodes" e);
             warm_eligible = as_int (field "warm_eligible" e);
             warm_taken = as_int (field "warm_taken" e);
             cache_hits = as_int (field "cache_hits" e);
             phase1_solves = as_int (field "phase1_solves" e);
             presolve_fixed = as_int (field "presolve_fixed" e);
             cover_cuts = as_int (field "cover_cuts" e);
             objectives =
               List.map
                 (function J_null -> None | v -> Some (as_num v))
                 (as_arr (field "objectives" e));
           }
         in
         {
           jobs = as_int (field "jobs" j);
           cores = int_opt "cores" ~default:1 j;
           entries = List.map entry (as_arr (field "entries" j));
         }
       with
       | doc -> Ok doc
       | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)))

(* ------------------------------------------------------------------ *)
(* scheduler fast-path benchmark (bench -- sched / BENCH_sched.json) *)

type sched_entry = {
  s_name : string; (* "chip/assay" or "codesign:chip/assay" *)
  s_wall_ms : float; (* fast-path wall clock *)
  s_makespan : int; (* makespan / final codesign objective; -1 = none *)
  s_steps : int; (* scheduler event-loop iterations *)
  s_routes : int; (* routing queries *)
}

type sched_doc = { s_jobs : int; s_cores : int; s_entries : sched_entry list }

let sched_schema = "mfdft-bench-sched-v1"

let save_sched path doc =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"schema\": \"%s\",\n  \"jobs\": %d,\n  \"cores\": %d,\n  \"entries\": [\n"
    sched_schema doc.s_jobs doc.s_cores;
  List.iteri
    (fun i e ->
      out
        "    {\"name\": \"%s\", \"wall_ms\": %.2f, \"makespan\": %d, \"steps\": %d, \
         \"routes\": %d}%s\n"
        e.s_name e.s_wall_ms e.s_makespan e.s_steps e.s_routes
        (if i = List.length doc.s_entries - 1 then "" else ","))
    doc.s_entries;
  out "  ]\n}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* family scaling sweep (bench -- scale / BENCH_scale.json) *)

type scale_entry = {
  c_name : string; (* "family/size" *)
  c_channels : int; (* channel edges of the generated chip *)
  c_valves : int;
  c_sched_ms : float; (* makespan simulation wall clock *)
  c_makespan : int; (* -1 = application failed to complete *)
  c_ilp_ms : float; (* pathgen wall clock *)
  c_added : int; (* DFT edges added; the ILP objective *)
  c_paths : int;
}

type scale_doc = { c_jobs : int; c_cores : int; c_entries : scale_entry list }

let scale_schema = "mfdft-bench-scale-v1"

let save_scale path doc =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"schema\": \"%s\",\n  \"jobs\": %d,\n  \"cores\": %d,\n  \"entries\": [\n"
    scale_schema doc.c_jobs doc.c_cores;
  List.iteri
    (fun i e ->
      out
        "    {\"name\": \"%s\", \"channels\": %d, \"valves\": %d, \"sched_ms\": %.2f,\n\
        \     \"makespan\": %d, \"ilp_ms\": %.1f, \"added\": %d, \"paths\": %d}%s\n"
        e.c_name e.c_channels e.c_valves e.c_sched_ms e.c_makespan e.c_ilp_ms e.c_added
        e.c_paths
        (if i = List.length doc.c_entries - 1 then "" else ","))
    doc.c_entries;
  out "  ]\n}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* fault-adaptive repair vs full codesign (bench -- repair / BENCH_repair.json) *)

type repair_entry = {
  r_name : string; (* "chip/assay" or "family/size/assay" *)
  r_full_ms : float; (* full codesign wall clock (pool + two-level PSO) *)
  r_repair_ms : float; (* incremental repair wall clock *)
  r_dropped : int; (* vectors the fault context malformed *)
  r_added : int; (* repair vectors added by the cover *)
  r_detected : int; (* post-repair coverage on the degraded chip *)
  r_total : int;
  r_vectors : int; (* repaired suite size *)
  r_waived : int; (* faults proved structurally untestable *)
  r_makespan : int; (* application makespan after repair; -1 = none *)
}

type repair_doc = { r_jobs : int; r_cores : int; r_entries : repair_entry list }

let repair_schema = "mfdft-bench-repair-v1"

let save_repair path doc =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "{\n  \"schema\": \"%s\",\n  \"jobs\": %d,\n  \"cores\": %d,\n  \"entries\": [\n"
    repair_schema doc.r_jobs doc.r_cores;
  List.iteri
    (fun i e ->
      out
        "    {\"name\": \"%s\", \"full_ms\": %.1f, \"repair_ms\": %.2f, \"dropped\": %d,\n\
        \     \"added\": %d, \"detected\": %d, \"total\": %d, \"vectors\": %d,\n\
        \     \"waived\": %d, \"makespan\": %d}%s\n"
        e.r_name e.r_full_ms e.r_repair_ms e.r_dropped e.r_added e.r_detected e.r_total
        e.r_vectors e.r_waived e.r_makespan
        (if i = List.length doc.r_entries - 1 then "" else ","))
    doc.r_entries;
  out "  ]\n}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* regression gate *)

(* Wall-clock and node counts may regress by at most this factor against
   the committed baseline.  Objectives must be no worse than baseline to
   1e-6: attempts both engines prove optimal are necessarily identical;
   attempts truncated by the node budget are trajectory-dependent, so a
   *better* incumbent is reported as a note, never a failure.  Returns
   (failures, notes); the run passes when failures is empty. *)
let tolerance = 1.25

let compare_against ~(baseline : doc) (current : doc) : string list * string list =
  let failures = ref [] in
  let notes = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  (* Wall clocks are only comparable at the same job count: the baseline
     is committed at jobs=1, and the MFDFT_JOBS=4 gate run exists to pin
     the deterministic counts (nodes, objectives — bit-identical for any
     job count), not the dispatch overhead of whatever core count the
     runner happens to have. *)
  let same_jobs = baseline.jobs = current.jobs in
  if not same_jobs then
    note "baseline at %d job(s), current at %d: wall-clock check skipped" baseline.jobs
      current.jobs;
  List.iter
    (fun (b : entry) ->
      match List.find_opt (fun e -> e.chip = b.chip) current.entries with
      | None -> fail "%s: missing from current run" b.chip
      | Some e ->
        if same_jobs && e.wall_ms > (tolerance *. b.wall_ms) +. 50. then
          fail "%s: wall-clock regression %.0f ms -> %.0f ms (>%.0f%% over baseline)" b.chip
            b.wall_ms e.wall_ms ((tolerance -. 1.) *. 100.);
        if float_of_int e.nodes > (tolerance *. float_of_int b.nodes) +. 5. then
          fail "%s: node-count regression %d -> %d (>%.0f%% over baseline)" b.chip b.nodes
            e.nodes
            ((tolerance -. 1.) *. 100.);
        if List.length e.objectives <> List.length b.objectives then
          fail "%s: %d pool attempts vs %d in baseline" b.chip (List.length e.objectives)
            (List.length b.objectives)
        else
          List.iteri
            (fun i (bo, eo) ->
              match (bo, eo) with
              | None, None -> ()
              | Some bo, Some eo when abs_float (bo -. eo) <= 1e-6 -> ()
              | Some bo, Some eo when eo < bo ->
                note "%s: attempt %d objective improved %.6f -> %.6f" b.chip i bo eo
              | Some bo, Some eo ->
                fail "%s: attempt %d objective regressed %.6f -> %.6f" b.chip i bo eo
              | Some _, None -> fail "%s: attempt %d succeeded in baseline, failed now" b.chip i
              | None, Some _ -> note "%s: attempt %d failed in baseline, succeeds now" b.chip i)
            (List.combine b.objectives e.objectives))
    baseline.entries;
  (List.rev !failures, List.rev !notes)

let load_sched path : (sched_doc, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match parse text with
    | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)
    | j ->
      (match
         let s = as_str (field "schema" j) in
         if s <> sched_schema then raise (Bad ("unknown schema " ^ s));
         let entry e =
           {
             s_name = as_str (field "name" e);
             s_wall_ms = as_num (field "wall_ms" e);
             s_makespan = as_int (field "makespan" e);
             s_steps = as_int (field "steps" e);
             s_routes = as_int (field "routes" e);
           }
         in
         {
           s_jobs = as_int (field "jobs" j);
           s_cores = int_opt "cores" ~default:1 j;
           s_entries = List.map entry (as_arr (field "entries" j));
         }
       with
       | doc -> Ok doc
       | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)))

let load_scale path : (scale_doc, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match parse text with
    | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)
    | j ->
      (match
         let s = as_str (field "schema" j) in
         if s <> scale_schema then raise (Bad ("unknown schema " ^ s));
         let entry e =
           {
             c_name = as_str (field "name" e);
             c_channels = as_int (field "channels" e);
             c_valves = as_int (field "valves" e);
             c_sched_ms = as_num (field "sched_ms" e);
             c_makespan = as_int (field "makespan" e);
             c_ilp_ms = as_num (field "ilp_ms" e);
             c_added = as_int (field "added" e);
             c_paths = as_int (field "paths" e);
           }
         in
         {
           c_jobs = as_int (field "jobs" j);
           c_cores = int_opt "cores" ~default:1 j;
           c_entries = List.map entry (as_arr (field "entries" j));
         }
       with
       | doc -> Ok doc
       | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)))

let load_repair path : (repair_doc, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match parse text with
    | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)
    | j ->
      (match
         let s = as_str (field "schema" j) in
         if s <> repair_schema then raise (Bad ("unknown schema " ^ s));
         let entry e =
           {
             r_name = as_str (field "name" e);
             r_full_ms = as_num (field "full_ms" e);
             r_repair_ms = as_num (field "repair_ms" e);
             r_dropped = as_int (field "dropped" e);
             r_added = as_int (field "added" e);
             r_detected = as_int (field "detected" e);
             r_total = as_int (field "total" e);
             r_vectors = as_int (field "vectors" e);
             r_waived = as_int (field "waived" e);
             r_makespan = as_int (field "makespan" e);
           }
         in
         {
           r_jobs = as_int (field "jobs" j);
           r_cores = int_opt "cores" ~default:1 j;
           r_entries = List.map entry (as_arr (field "entries" j));
         }
       with
       | doc -> Ok doc
       | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)))

(* Scale gate: generation, scheduling and path synthesis are all
   deterministic per (family, size) point, so chip shape, makespan and the
   ILP objective must match the baseline exactly; both wall clocks get the
   usual tolerance.  A changed channel/valve count means the generator
   itself drifted — that invalidates every downstream number, so it is a
   failure, not a note. *)
let compare_scale ~(baseline : scale_doc) (current : scale_doc) : string list * string list =
  let failures = ref [] in
  let notes = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  List.iter
    (fun (b : scale_entry) ->
      match List.find_opt (fun e -> e.c_name = b.c_name) current.c_entries with
      | None -> fail "%s: missing from current run" b.c_name
      | Some e ->
        if e.c_channels <> b.c_channels || e.c_valves <> b.c_valves then
          fail "%s: generated chip drifted (%d channels/%d valves -> %d/%d)" b.c_name
            b.c_channels b.c_valves e.c_channels e.c_valves;
        if e.c_sched_ms > (tolerance *. b.c_sched_ms) +. 50. then
          fail "%s: scheduler wall regression %.1f ms -> %.1f ms (>%.0f%% over baseline)"
            b.c_name b.c_sched_ms e.c_sched_ms
            ((tolerance -. 1.) *. 100.);
        if e.c_ilp_ms > (tolerance *. b.c_ilp_ms) +. 50. then
          fail "%s: ILP wall regression %.0f ms -> %.0f ms (>%.0f%% over baseline)" b.c_name
            b.c_ilp_ms e.c_ilp_ms
            ((tolerance -. 1.) *. 100.);
        if e.c_makespan <> b.c_makespan then
          fail "%s: makespan mismatch %d -> %d" b.c_name b.c_makespan e.c_makespan;
        if e.c_added <> b.c_added then
          fail "%s: ILP objective mismatch %d -> %d added edges" b.c_name b.c_added e.c_added;
        if e.c_paths <> b.c_paths then
          note "%s: path count changed %d -> %d" b.c_name b.c_paths e.c_paths)
    baseline.c_entries;
  (List.rev !failures, List.rev !notes)

(* Repair gate: the engine is deterministic (no rng, order-preserving
   fan-out), so every count — damage, cover size, coverage, waivers,
   makespan — must match the baseline exactly; both wall clocks get the
   usual tolerance.  Any coverage or suite-shape change means the repair
   algorithm itself drifted and the baseline refresh must be deliberate. *)
let compare_repair ~(baseline : repair_doc) (current : repair_doc) : string list * string list
    =
  let failures = ref [] in
  let notes = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  List.iter
    (fun (b : repair_entry) ->
      match List.find_opt (fun e -> e.r_name = b.r_name) current.r_entries with
      | None -> fail "%s: missing from current run" b.r_name
      | Some e ->
        if e.r_repair_ms > (tolerance *. b.r_repair_ms) +. 50. then
          fail "%s: repair wall regression %.1f ms -> %.1f ms (>%.0f%% over baseline)" b.r_name
            b.r_repair_ms e.r_repair_ms
            ((tolerance -. 1.) *. 100.);
        if e.r_full_ms > (tolerance *. b.r_full_ms) +. 50. then
          note "%s: full-codesign wall drifted %.0f ms -> %.0f ms" b.r_name b.r_full_ms
            e.r_full_ms;
        if e.r_dropped <> b.r_dropped then
          fail "%s: damage set changed %d -> %d dropped vectors" b.r_name b.r_dropped
            e.r_dropped;
        if e.r_added <> b.r_added then
          fail "%s: cover size changed %d -> %d repair vectors" b.r_name b.r_added e.r_added;
        if e.r_detected <> b.r_detected || e.r_total <> b.r_total then
          fail "%s: coverage changed %d/%d -> %d/%d" b.r_name b.r_detected b.r_total
            e.r_detected e.r_total;
        if e.r_vectors <> b.r_vectors then
          fail "%s: suite size changed %d -> %d" b.r_name b.r_vectors e.r_vectors;
        if e.r_waived <> b.r_waived then
          fail "%s: waiver count changed %d -> %d" b.r_name b.r_waived e.r_waived;
        if e.r_makespan <> b.r_makespan then
          fail "%s: makespan mismatch %d -> %d" b.r_name b.r_makespan e.r_makespan)
    baseline.r_entries;
  (List.rev !failures, List.rev !notes)

(* Scheduler gate: same wall tolerance as the LP gate; makespans (and the
   final codesign objective) are deterministic, so any mismatch against the
   baseline is a hard failure.  Step/route counts are deterministic too but
   legitimately change when the scheduling algorithm changes — drift is
   reported as a note so the baseline refresh is a conscious act. *)
let compare_sched ~(baseline : sched_doc) (current : sched_doc) : string list * string list =
  let failures = ref [] in
  let notes = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  List.iter
    (fun (b : sched_entry) ->
      match List.find_opt (fun e -> e.s_name = b.s_name) current.s_entries with
      | None -> fail "%s: missing from current run" b.s_name
      | Some e ->
        if e.s_wall_ms > (tolerance *. b.s_wall_ms) +. 50. then
          fail "%s: wall-clock regression %.1f ms -> %.1f ms (>%.0f%% over baseline)" b.s_name
            b.s_wall_ms e.s_wall_ms
            ((tolerance -. 1.) *. 100.);
        if e.s_makespan <> b.s_makespan then
          fail "%s: makespan/objective mismatch %d -> %d" b.s_name b.s_makespan e.s_makespan;
        if e.s_steps <> b.s_steps then
          note "%s: event-loop steps changed %d -> %d" b.s_name b.s_steps e.s_steps;
        if e.s_routes <> b.s_routes then
          note "%s: route queries changed %d -> %d" b.s_name b.s_routes e.s_routes)
    baseline.s_entries;
  (List.rev !failures, List.rev !notes)

(* ------------------------------------------------------------------ *)
(* serve-mode engine benchmark (bench -- serve / BENCH_serve.json) *)

type serve_entry = {
  v_name : string; (* "chip/assay" *)
  v_fingerprint : string; (* submission fingerprint (canonical-form digest) *)
  v_digest : string; (* result digest — byte-identity anchor for the cache *)
  v_cold_ms : float; (* cold solve through the engine, empty cache *)
  v_hit_ms : float; (* mean cache-hit service latency for the same spec *)
}

type serve_doc = {
  v_jobs : int;
  v_cores : int;
  v_warm_jobs_per_s : float; (* resubmission throughput against a warm cache *)
  v_entries : serve_entry list;
}

let serve_schema = "mfdft-bench-serve-v1"

let save_serve path doc =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out
    "{\n  \"schema\": \"%s\",\n  \"jobs\": %d,\n  \"cores\": %d,\n\
    \  \"warm_jobs_per_s\": %.1f,\n  \"entries\": [\n"
    serve_schema doc.v_jobs doc.v_cores doc.v_warm_jobs_per_s;
  List.iteri
    (fun i e ->
      out
        "    {\"name\": \"%s\", \"fingerprint\": \"%s\", \"digest\": \"%s\",\n\
        \     \"cold_ms\": %.1f, \"hit_ms\": %.3f}%s\n"
        e.v_name e.v_fingerprint e.v_digest e.v_cold_ms e.v_hit_ms
        (if i = List.length doc.v_entries - 1 then "" else ","))
    doc.v_entries;
  out "  ]\n}\n";
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc (Buffer.contents buf))

let load_serve path : (serve_doc, string) result =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
    match parse text with
    | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)
    | j ->
      (match
         let s = as_str (field "schema" j) in
         if s <> serve_schema then raise (Bad ("unknown schema " ^ s));
         let entry e =
           {
             v_name = as_str (field "name" e);
             v_fingerprint = as_str (field "fingerprint" e);
             v_digest = as_str (field "digest" e);
             v_cold_ms = as_num (field "cold_ms" e);
             v_hit_ms = as_num (field "hit_ms" e);
           }
         in
         {
           v_jobs = as_int (field "jobs" j);
           v_cores = int_opt "cores" ~default:1 j;
           v_warm_jobs_per_s = as_num (field "warm_jobs_per_s" j);
           v_entries = List.map entry (as_arr (field "entries" j));
         }
       with
       | doc -> Ok doc
       | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)))

(* Serve gate: fingerprints and result digests are deterministic — any
   drift means the canonical form or the solver changed, which silently
   invalidates every cached result in the wild, so both are hard failures.
   Cold wall and hit latency get the usual tolerance (hit latencies are
   single-digit milliseconds, so the absolute slack is proportionally
   smaller); warm throughput is a higher-is-better gate.  Wall checks are
   skipped across differing job counts, matching the LP gate. *)
let compare_serve ~(baseline : serve_doc) (current : serve_doc) : string list * string list =
  let failures = ref [] in
  let notes = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let note fmt = Printf.ksprintf (fun m -> notes := m :: !notes) fmt in
  let same_jobs = baseline.v_jobs = current.v_jobs in
  if not same_jobs then
    note "baseline at %d job(s), current at %d: wall-clock checks skipped" baseline.v_jobs
      current.v_jobs;
  List.iter
    (fun (b : serve_entry) ->
      match List.find_opt (fun e -> e.v_name = b.v_name) current.v_entries with
      | None -> fail "%s: missing from current run" b.v_name
      | Some e ->
        if e.v_fingerprint <> b.v_fingerprint then
          fail "%s: fingerprint drifted %s -> %s (canonical form changed)" b.v_name
            b.v_fingerprint e.v_fingerprint;
        if e.v_digest <> b.v_digest then
          fail "%s: result digest drifted %s -> %s (solver output changed)" b.v_name b.v_digest
            e.v_digest;
        if same_jobs && e.v_cold_ms > (tolerance *. b.v_cold_ms) +. 50. then
          fail "%s: cold-solve wall regression %.0f ms -> %.0f ms (>%.0f%% over baseline)"
            b.v_name b.v_cold_ms e.v_cold_ms
            ((tolerance -. 1.) *. 100.);
        if same_jobs && e.v_hit_ms > (tolerance *. b.v_hit_ms) +. 5. then
          fail "%s: cache-hit latency regression %.2f ms -> %.2f ms (>%.0f%% over baseline)"
            b.v_name b.v_hit_ms e.v_hit_ms
            ((tolerance -. 1.) *. 100.))
    baseline.v_entries;
  if same_jobs && current.v_warm_jobs_per_s < (baseline.v_warm_jobs_per_s /. tolerance) -. 2.
  then
    fail "warm throughput regression %.1f jobs/s -> %.1f jobs/s (>%.0f%% below baseline)"
      baseline.v_warm_jobs_per_s current.v_warm_jobs_per_s
      ((tolerance -. 1.) *. 100.);
  (List.rev !failures, List.rev !notes)
