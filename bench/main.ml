(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation (Sec. 5) and runs bechamel micro-benchmarks of the pipelines.

   Usage:
     dune exec bench/main.exe                 -- table1 fig7 fig8 fig9 (quick budgets)
     dune exec bench/main.exe -- table1       -- a single experiment
     dune exec bench/main.exe -- full         -- everything at paper-scale PSO budgets
     dune exec bench/main.exe -- micro        -- bechamel micro-benchmarks
     dune exec bench/main.exe -- ablate       -- design-choice ablations
     dune exec bench/main.exe -- chaos        -- codesign matrix under fault injection
     dune exec bench/main.exe -- verify       -- static-verification overhead vs generation
     dune exec bench/main.exe -- perf         -- LP-core counters, gated vs BENCH_ilp.json
     dune exec bench/main.exe -- perf-baseline -- rewrite the BENCH_ilp.json baseline
     dune exec bench/main.exe -- ilp          -- parallel B&B jobs sweep + presolve/cut ablation
     dune exec bench/main.exe -- sched        -- scheduler fast path, gated vs BENCH_sched.json
     dune exec bench/main.exe -- sched-baseline -- rewrite the BENCH_sched.json baseline
     dune exec bench/main.exe -- scale        -- chip-family size sweep, gated vs BENCH_scale.json
     dune exec bench/main.exe -- scale-baseline -- rewrite the BENCH_scale.json baseline
     dune exec bench/main.exe -- repair       -- fault-adaptive retest vs codesign, gated vs BENCH_repair.json
     dune exec bench/main.exe -- repair-baseline -- rewrite the BENCH_repair.json baseline
     dune exec bench/main.exe -- serve        -- serve engine cold/hit/warm, gated vs BENCH_serve.json
     dune exec bench/main.exe -- serve-baseline -- rewrite the BENCH_serve.json baseline

   Absolute times differ from the paper (different workload realisations and
   a simulated substrate); the comparisons that matter are the shapes:
   original vs DFT-without-PSO vs DFT-with-PSO (Table 1), DFT with free
   control beating the original (Fig. 7), original multi-port tests needing
   fewer vectors than single-source single-meter DFT (Fig. 8), and the PSO
   convergence (Fig. 9). *)

module Chip = Mf_arch.Chip
module Assays = Mf_bioassay.Assays
module Benchmarks = Mf_chips.Benchmarks
module Codesign = Mfdft.Codesign
module Domain_pool = Mf_util.Domain_pool
module Pool = Mfdft.Pool
module Pso = Mf_pso.Pso
module Rng = Mf_util.Rng

(* parallelism of the codesign runs: MFDFT_JOBS if set, else serial (the
   published numbers in EXPERIMENTS.md are wall-clock comparable that way;
   results themselves are identical for any job count) *)
let jobs = if Sys.getenv_opt "MFDFT_JOBS" = None then 1 else Domain_pool.default_jobs ()

let chips = [ "ivd_chip"; "ra30_chip"; "mrna_chip" ]
let assays = [ "ivd"; "pid"; "cpa" ]

let pp_opt ppf = function
  | Some v -> Fmt.pf ppf "%5d" v
  | None -> Fmt.pf ppf "    -"

(* ------------------------------------------------------------------ *)
(* Shared evaluation: one codesign run per chip x assay, pool per chip. *)

type cell = { assay : string; result : (Codesign.result, string) result }

type row = { chip_label : string; cells : cell list }

let evaluate ~params =
  List.map
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      let rng = Rng.create ~seed:params.Codesign.seed in
      let pool =
        Domain_pool.with_pool ~jobs (fun domains ->
            Pool.build ~size:params.Codesign.pool_size
              ~node_limit:params.Codesign.ilp_node_limit ~domains ~rng chip)
      in
      let count kind =
        Array.to_list (Chip.devices chip)
        |> List.filter (fun (d : Chip.device) -> d.kind = kind)
        |> List.length
      in
      let chip_label =
        Printf.sprintf "%s (%d mixers, %d detectors, %d valves)" (Chip.name chip)
          (count Chip.Mixer) (count Chip.Detector) (Chip.n_valves chip)
      in
      let cells =
        List.map
          (fun assay ->
            let app = Option.get (Assays.by_name assay) in
            let result =
              match pool with
              | Error f -> Error (Mf_util.Fail.to_string f)
              | Ok pool -> (
                  match Codesign.run ~params ~pool chip app with
                  | Ok r -> Ok r
                  | Error f -> Error (Mf_util.Fail.to_string f))
            in
            { assay; result })
          assays
      in
      Format.printf "  [%s done]@." chip_name;
      { chip_label; cells })
    chips

(* ------------------------------------------------------------------ *)
(* Table 1 *)

let print_table1 rows =
  Format.printf "@.== Table 1: Results of DFT Augmentation ==@.";
  Format.printf
    "(per assay, first line: #DFT valves | #valves sharing | flow runtime [s];@.";
  Format.printf
    " second line: exec time original | with DFT no PSO | with DFT + PSO [s])@.@.";
  Format.printf "%-45s" "";
  List.iter (fun a -> Format.printf "| %-19s " (String.uppercase_ascii a)) assays;
  Format.printf "@.";
  List.iter
    (fun row ->
      Format.printf "%-45s" row.chip_label;
      List.iter
        (fun cell ->
          match cell.result with
          | Error _ -> Format.printf "| %-19s " "FAILED"
          | Ok r ->
            Format.printf "| %3d %3d %11.1f " r.Codesign.n_dft_valves r.Codesign.n_shared
              r.Codesign.runtime)
        row.cells;
      Format.printf "@.%-45s" "";
      List.iter
        (fun cell ->
          match cell.result with
          | Error m -> Format.printf "| %-19s " (String.sub m 0 (min 19 (String.length m)))
          | Ok r ->
            Format.printf "| %a %a %a  " pp_opt r.Codesign.exec_original pp_opt
              r.Codesign.exec_dft_no_pso pp_opt r.Codesign.exec_final)
        row.cells;
      Format.printf "@.")
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 7 *)

let print_fig7 rows =
  Format.printf "@.== Figure 7: execution time, original chip vs DFT architecture ==@.";
  Format.printf "   (DFT valves on their own control lines: extra resources, no sharing)@.@.";
  Format.printf "%-14s %-8s %12s %18s@." "chip" "assay" "original[s]" "DFT unshared[s]";
  List.iter
    (fun row ->
      List.iter
        (fun cell ->
          match cell.result with
          | Error _ -> ()
          | Ok r ->
            Format.printf "%-14s %-8s %a        %a%s@."
              (List.nth (String.split_on_char ' ' row.chip_label) 0)
              cell.assay pp_opt r.Codesign.exec_original pp_opt r.Codesign.exec_dft_unshared
              (match (r.Codesign.exec_original, r.Codesign.exec_dft_unshared) with
               | Some o, Some d when d < o -> "   (DFT faster)"
               | Some o, Some d when d = o -> "   (equal)"
               | Some _, Some _ | Some _, None | None, Some _ | None, None -> ""))
        row.cells)
    rows

(* ------------------------------------------------------------------ *)
(* Fig. 8 *)

let print_fig8 rows =
  Format.printf "@.== Figure 8: number of test vectors (and estimated test time) ==@.";
  Format.printf "   (multi-port original chip vs single-source single-meter DFT)@.@.";
  Format.printf "%-14s %10s %12s %10s %12s@." "chip" "orig vecs" "orig time" "DFT vecs"
    "DFT time";
  List.iter2
    (fun chip_name row ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      let original = Mf_testgen.Multiport.generate chip in
      let n_original =
        original.Mf_testgen.Multiport.n_path_vectors
        + original.Mf_testgen.Multiport.n_cut_vectors
      in
      let layout = Mf_control.Control.synthesize chip in
      let orig_time =
        Mf_testgen.Testtime.total chip layout original.Mf_testgen.Multiport.vectors
      in
      let dft =
        List.filter_map
          (fun cell ->
            match cell.result with
            | Ok r ->
              let aug = r.Codesign.shared in
              let aug_layout = Mf_control.Control.synthesize aug in
              let vectors = Mf_testgen.Vectors.vectors aug r.Codesign.suite in
              Some (r.Codesign.n_vectors_dft, Mf_testgen.Testtime.total aug aug_layout vectors)
            | Error _ -> None)
          row.cells
      in
      let dft_str, dft_time =
        match dft with
        | [] -> ("-", "-")
        | (n, t) :: rest ->
          let n = List.fold_left (fun acc (m, _) -> max acc m) n rest in
          let t = List.fold_left (fun acc (_, u) -> max acc u) t rest in
          (string_of_int n, Printf.sprintf "%.0f" t)
      in
      Format.printf "%-14s %10d %12.0f %10s %12s@." chip_name n_original orig_time dft_str
        dft_time)
    chips rows

(* ------------------------------------------------------------------ *)
(* Fig. 9 *)

let fig9_combos = [ ("ivd_chip", "ivd"); ("ra30_chip", "pid"); ("mrna_chip", "cpa") ]

let index_of x l =
  let rec go i = function
    | [] -> invalid_arg "index_of"
    | y :: rest -> if x = y then i else go (i + 1) rest
  in
  go 0 l

let print_fig9 rows =
  Format.printf "@.== Figure 9: application execution time during PSO iterations ==@.@.";
  List.iter
    (fun (chip_name, assay) ->
      let row = List.nth rows (index_of chip_name chips) in
      let cell = List.find (fun c -> c.assay = assay) row.cells in
      match cell.result with
      | Error m -> Format.printf "%s/%s: %s@." chip_name assay m
      | Ok r ->
        let stride = max 1 (List.length r.Codesign.trace / 20) in
        Format.printf "%s/%s:@.  iter:" chip_name assay;
        List.iteri
          (fun i _ -> if i mod stride = 0 then Format.printf "%7d" (i + 1))
          r.Codesign.trace;
        Format.printf "@.  best:";
        List.iteri
          (fun i v ->
            if i mod stride = 0 then
              if v >= Codesign.invalid_threshold then Format.printf "%7s" "-"
              else Format.printf "%7.0f" v)
          r.Codesign.trace;
        Format.printf "@.")
    fig9_combos

(* ------------------------------------------------------------------ *)
(* Ablations *)

let print_ablations () =
  Format.printf "@.== Ablations ==@.";
  Format.printf "@.-- DFT generation: ILP node budget vs configuration size --@.";
  Format.printf "%-14s %14s %12s %12s@." "chip" "budget[nodes]" "added edges" "paths";
  List.iter
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      List.iter
        (fun budget ->
          match Mf_testgen.Pathgen.generate ~node_limit:budget chip with
          | Error f ->
            Format.printf "%-14s %14d %s@." chip_name budget (Mf_util.Fail.to_string f)
          | Ok c ->
            Format.printf "%-14s %14d %12d %12d@." chip_name budget
              (List.length c.Mf_testgen.Pathgen.added_edges)
              c.Mf_testgen.Pathgen.n_paths)
        [ 100; 400; 1200 ])
    chips;
  Format.printf "@.-- Stuck-at-1 cuts: forced min-cut generator vs worst-case fallback --@.";
  Format.printf "%-14s %12s %12s@." "chip" "min-cut" "fallback";
  List.iter
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      match Mf_testgen.Pathgen.generate ~node_limit:400 chip with
      | Error f -> Format.printf "%-14s %s@." chip_name (Mf_util.Fail.to_string f)
      | Ok config ->
        let aug = Mf_testgen.Pathgen.apply chip config in
        let minimal =
          Mf_testgen.Cutgen.generate aug ~source:config.Mf_testgen.Pathgen.src_port
            ~meter:config.Mf_testgen.Pathgen.dst_port
        in
        let fallback =
          Mf_testgen.Cutgen.fallback_cuts aug ~source:config.Mf_testgen.Pathgen.src_port
            ~meter:config.Mf_testgen.Pathgen.dst_port config.Mf_testgen.Pathgen.paths
        in
        Format.printf "%-14s %12d %12d@." chip_name
          (List.length minimal.Mf_testgen.Cutgen.cuts)
          (List.length fallback))
    chips;
  Format.printf "@.-- Control layer: routing cost of valve sharing (refs [12],[14]) --@.";
  Format.printf "%-14s %8s %10s %10s %10s@." "chip" "ports" "length" "max skew" "unrouted";
  List.iter
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      let layout = Mf_control.Control.synthesize chip in
      Format.printf "%-14s %8d %10d %10.1f %10d@." chip_name
        (Mf_control.Control.n_ports layout)
        (Mf_control.Control.total_length layout)
        (Mf_control.Control.max_skew layout)
        (List.length layout.Mf_control.Control.unrouted);
      match Mf_testgen.Pathgen.generate ~node_limit:400 chip with
      | Error _ -> ()
      | Ok config ->
        let aug = Mf_testgen.Pathgen.apply chip config in
        let free = Mf_control.Control.synthesize aug in
        Format.printf "%-14s %8d %10d %10.1f %10d@."
          (chip_name ^ "+DFT")
          (Mf_control.Control.n_ports free)
          (Mf_control.Control.total_length free)
          (Mf_control.Control.max_skew free)
          (List.length free.Mf_control.Control.unrouted))
    chips;
  Format.printf
    "   (sharing keeps the port count at the original chip's; the price is@.";
  Format.printf
    "    longer trees, actuation skew, and possible planarity failures)@.";
  Format.printf "@.-- Scheduler: distributed channel storage off / washing on --@.";
  Format.printf "%-14s %-8s %12s %14s %12s@." "chip" "assay" "default[s]" "no storage[s]"
    "washing[s]";
  List.iter
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      List.iter
        (fun assay ->
          let app = Option.get (Assays.by_name assay) in
          let with_storage = Mf_sched.Scheduler.makespan chip app in
          let without =
            Mf_sched.Scheduler.makespan
              ~options:{ Mf_sched.Scheduler.default_options with allow_storage = false }
              chip app
          in
          let washed =
            Mf_sched.Scheduler.makespan
              ~options:{ Mf_sched.Scheduler.default_options with wash = true }
              chip app
          in
          Format.printf "%-14s %-8s %a      %a     %a@." chip_name assay pp_opt with_storage
            pp_opt without pp_opt washed)
        assays)
    chips

(* ------------------------------------------------------------------ *)
(* Serial vs parallel wall clock of the hottest path: one quick codesign
   run per job count, identical seeds — the differential test suite pins
   the outputs equal, here we report the wall-clock ratio. *)

let speedup () =
  let parallel_jobs =
    max 2 (if Sys.getenv_opt "MFDFT_JOBS" = None then Domain_pool.default_jobs () else jobs)
  in
  Format.printf "@.== Codesign speedup: jobs=1 vs jobs=%d (%d core%s available) ==@.@."
    parallel_jobs
    (Domain.recommended_domain_count ())
    (if Domain.recommended_domain_count () = 1 then "" else "s");
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  let time jobs =
    let params = { Codesign.quick_params with Codesign.jobs } in
    let t0 = Unix.gettimeofday () in
    match Codesign.run ~params chip app with
    | Error f -> failwith (Mf_util.Fail.to_string f)
    | Ok r -> (Unix.gettimeofday () -. t0, (r.Codesign.exec_final, r.Codesign.trace))
  in
  let t_serial, out_serial = time 1 in
  let t_parallel, out_parallel = time parallel_jobs in
  Format.printf "serial      (jobs=1): %6.2f s@." t_serial;
  Format.printf "parallel   (jobs=%2d): %6.2f s@." parallel_jobs t_parallel;
  Format.printf "speedup: %.2fx   outputs identical: %b@."
    (t_serial /. t_parallel)
    (out_serial = out_parallel)

(* ------------------------------------------------------------------ *)
(* Chaos scenario: the full codesign matrix with fault injection enabled.
   Every run must complete — either with a valid (possibly degraded) suite
   or with a typed error — never an uncaught exception. Rate comes from
   MFDFT_CHAOS when exported, else 30%. *)

let chaos_bench () =
  let rate = if Mf_util.Chaos.active () then Mf_util.Chaos.rate () else 0.3 in
  Mf_util.Chaos.set (Some { Mf_util.Chaos.rate; seed = Mf_util.Chaos.default_seed });
  Mf_util.Chaos.reset_counts ();
  Format.printf "@.== Chaos: codesign matrix under %.0f%% fault injection ==@.@."
    (rate *. 100.);
  Format.printf "%-14s %-8s %-10s %-6s %s@." "chip" "assay" "outcome" "valid" "degradations";
  let valid_runs = ref 0 and total = ref 0 in
  List.iter
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      List.iter
        (fun assay ->
          let app = Option.get (Assays.by_name assay) in
          incr total;
          match Codesign.run ~params:Codesign.quick_params chip app with
          | Error f ->
            Format.printf "%-14s %-8s %-10s %-6s %s@." chip_name assay "error" "-"
              (Mf_util.Fail.to_string f)
          | Ok r ->
            let valid = Mf_testgen.Vectors.is_valid r.Codesign.shared r.Codesign.suite in
            if valid then incr valid_runs;
            Format.printf "%-14s %-8s %-10s %-6b %s@." chip_name assay "completed" valid
              (match r.Codesign.degradations with
               | [] -> "none"
               | ds -> String.concat "; " (List.map Codesign.degradation_to_string ds)))
        assays)
    chips;
  Format.printf "@.%d/%d runs completed with a valid suite; strikes injected:@." !valid_runs
    !total;
  List.iter
    (fun (site, n) -> Format.printf "  %-14s %d@." (Mf_util.Chaos.site_name site) n)
    (Mf_util.Chaos.strikes ());
  Mf_util.Chaos.set None

(* ------------------------------------------------------------------ *)
(* verification overhead: what the independent checker costs relative to
   generating the suite it checks *)

let verify_bench () =
  Format.printf "@.== Verification overhead (lint + certificate re-proof vs generation) ==@.@.";
  Format.printf "%-12s %12s %12s %12s %9s@." "chip" "generate(ms)" "lint(ms)" "verify(ms)"
    "overhead";
  List.iter
    (fun name ->
      let chip = Option.get (Benchmarks.by_name name) in
      let time f =
        let t0 = Unix.gettimeofday () in
        let r = f () in
        (r, (Unix.gettimeofday () -. t0) *. 1e3)
      in
      let (aug, suite), t_gen =
        time (fun () ->
            match Mf_testgen.Pathgen.generate ~node_limit:300 chip with
            | Error f -> failwith (Mf_util.Fail.to_string f)
            | Ok config ->
              let aug = Mf_testgen.Pathgen.apply chip config in
              let cuts =
                Mf_testgen.Cutgen.generate aug ~source:config.Mf_testgen.Pathgen.src_port
                  ~meter:config.Mf_testgen.Pathgen.dst_port
              in
              (aug, Mf_testgen.Vectors.of_config config cuts))
      in
      let report = Mf_testgen.Vectors.validate aug suite in
      let cert =
        Mf_verify.Cert.make ~chip_name:(Chip.name aug)
          ~suite:
            {
              Mf_verify.Cert.source_port = suite.Mf_testgen.Vectors.source_port;
              meter_port = suite.Mf_testgen.Vectors.meter_port;
              path_edges = suite.Mf_testgen.Vectors.path_edges;
              cut_valves = suite.Mf_testgen.Vectors.cut_valves;
            }
          ~claimed_vectors:(Mf_testgen.Vectors.count suite)
          ~claimed_coverage:
            (report.Mf_faults.Coverage.detected, report.Mf_faults.Coverage.total_faults)
          ()
      in
      let lint, t_lint = time (fun () -> Mf_verify.Lint.chip aug) in
      let diags, t_verify = time (fun () -> Mf_verify.Verify.certificate aug cert) in
      if Mf_util.Diag.has_errors (lint @ diags) then
        failwith (name ^ ": verification found errors on a clean suite");
      Format.printf "%-12s %12.1f %12.2f %12.2f %8.1f%%@." name t_gen t_lint t_verify
        ((t_lint +. t_verify) /. t_gen *. 100.))
    Benchmarks.names

(* ------------------------------------------------------------------ *)
(* Perf-regression harness for the LP core: one pool build per benchmark
   chip (the ILP-heavy stage feeding every chip x assay codesign run),
   counters from the process-wide solver telemetry, machine-readable
   output gated against the committed BENCH_ilp.json baseline. *)

let perf_measure () =
  let params = Codesign.quick_params in
  List.map
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      Mf_lp.Simplex.Stats.reset ();
      Mf_ilp.Ilp.Stats.reset ();
      let rng = Rng.create ~seed:params.Codesign.seed in
      let t0 = Unix.gettimeofday () in
      let pool =
        Domain_pool.with_pool ~jobs (fun domains ->
            Pool.build ~size:params.Codesign.pool_size
              ~node_limit:params.Codesign.ilp_node_limit ~domains ~rng chip)
      in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      let objectives =
        match pool with
        | Error _ -> []
        | Ok pool -> Array.to_list (Pool.attempt_objectives pool)
      in
      {
        Perf_json.chip = chip_name;
        wall_ms;
        pivots = Mf_lp.Simplex.Stats.pivots ();
        dual_pivots = Atomic.get Mf_lp.Simplex.Stats.dual_pivots;
        nodes = Atomic.get Mf_ilp.Ilp.Stats.nodes;
        warm_eligible = Atomic.get Mf_ilp.Ilp.Stats.warm_eligible;
        warm_taken = Atomic.get Mf_ilp.Ilp.Stats.warm_taken;
        cache_hits = Atomic.get Mf_ilp.Ilp.Stats.cache_hits;
        phase1_solves = Atomic.get Mf_lp.Simplex.Stats.phase1_solves;
        presolve_fixed = Atomic.get Mf_ilp.Ilp.Stats.presolve_fixed;
        cover_cuts = Atomic.get Mf_ilp.Ilp.Stats.cover_cuts;
        objectives;
      })
    chips

let baseline_path = "BENCH_ilp.json"

let perf ~write_baseline () =
  Format.printf "@.== Perf: LP core on the pool-build matrix (pools are per-chip; each@.";
  Format.printf "   feeds all of ivd/pid/cpa) — %d job%s ==@.@." jobs (if jobs = 1 then "" else "s");
  let entries = perf_measure () in
  Format.printf "%-12s %10s %10s %8s %7s %7s %7s %7s@." "chip" "wall[ms]" "pivots" "dual"
    "nodes" "warm%" "cache" "phase1";
  List.iter
    (fun (e : Perf_json.entry) ->
      Format.printf "%-12s %10.0f %10d %8d %7d %6.1f%% %7d %7d@." e.Perf_json.chip
        e.Perf_json.wall_ms e.Perf_json.pivots e.Perf_json.dual_pivots e.Perf_json.nodes
        (if e.Perf_json.warm_eligible = 0 then 0.
         else
           100. *. float_of_int e.Perf_json.warm_taken
           /. float_of_int e.Perf_json.warm_eligible)
        e.Perf_json.cache_hits e.Perf_json.phase1_solves)
    entries;
  let doc = { Perf_json.jobs; cores = Perf_json.this_cores (); entries } in
  if write_baseline then begin
    Perf_json.save baseline_path doc;
    Format.printf "@.baseline written to %s@." baseline_path
  end
  else begin
    match Perf_json.load baseline_path with
    | Error msg ->
      Format.printf "@.no usable baseline (%s); run `bench -- perf-baseline` to create one@."
        msg
    | Ok baseline ->
      let sum f = List.fold_left (fun acc e -> acc + f e) 0 in
      let sumf f = List.fold_left (fun acc e -> acc +. f e) 0. in
      let b_pivots = sum (fun (e : Perf_json.entry) -> e.Perf_json.pivots) baseline.Perf_json.entries in
      let c_pivots = sum (fun (e : Perf_json.entry) -> e.Perf_json.pivots) entries in
      let b_wall = sumf (fun (e : Perf_json.entry) -> e.Perf_json.wall_ms) baseline.Perf_json.entries in
      let c_wall = sumf (fun (e : Perf_json.entry) -> e.Perf_json.wall_ms) entries in
      Format.printf "@.vs baseline (%s): pivots %d -> %d (%.2fx), wall %.0f ms -> %.0f ms (%.2fx)@."
        baseline_path b_pivots c_pivots
        (float_of_int b_pivots /. float_of_int (max 1 c_pivots))
        b_wall c_wall
        (b_wall /. max 1. c_wall);
      let failures, notes = Perf_json.compare_against ~baseline doc in
      List.iter (fun m -> Format.printf "note: %s@." m) notes;
      (match failures with
       | [] -> Format.printf "perf gate: PASS (within %.0f%% of baseline, objectives no worse)@."
                 ((Perf_json.tolerance -. 1.) *. 100.)
       | failures ->
         Format.printf "perf gate: FAIL@.";
         List.iter (fun m -> Format.printf "  - %s@." m) failures;
         exit 1)
  end

(* ------------------------------------------------------------------ *)
(* Parallel branch-and-bound: jobs sweep over the path-synthesis ILP on
   every benchmark chip, plus the presolve / cover-cut ablation.  The
   differential test suite pins the outputs bit-identical across job
   counts; here we report the wall-clock ratio (on a single-core
   container the sweep measures dispatch overhead, not speedup — the
   identity columns are the point there) and the node-count effect of
   the root reductions at equal objectives.  Report-only: the gated
   counters live in [perf] / BENCH_ilp.json. *)

let ilp_sweep () =
  let cores = Domain.recommended_domain_count () in
  Format.printf "@.== ILP: parallel branch-and-bound jobs sweep (%d core%s available) ==@.@."
    cores
    (if cores = 1 then "" else "s");
  if cores = 1 then
    Format.printf
      "   note: single core available — the jobs sweep measures dispatch overhead,@.\
      \   not speedup; the identical-output columns are the point here@.@.";
  let fingerprint (c : Mf_testgen.Pathgen.config) =
    ( c.Mf_testgen.Pathgen.added_edges,
      c.Mf_testgen.Pathgen.paths,
      c.Mf_testgen.Pathgen.n_paths,
      c.Mf_testgen.Pathgen.ilp_nodes,
      c.Mf_testgen.Pathgen.loop_cuts,
      c.Mf_testgen.Pathgen.solver,
      c.Mf_testgen.Pathgen.degraded )
  in
  let run ?presolve ?cuts ?pool chip =
    let t0 = Unix.gettimeofday () in
    let r = Mf_testgen.Pathgen.generate ~node_limit:400 ?presolve ?cuts ?pool chip in
    ((Unix.gettimeofday () -. t0) *. 1e3, r)
  in
  Format.printf "%-12s %5s %10s %8s %8s %7s %10s@." "chip" "jobs" "wall[ms]" "nodes"
    "batches" "covers" "identical";
  let mismatches = ref [] in
  List.iter
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      let wall1, serial = run chip in
      match serial with
      | Error f ->
        Format.printf "%-12s %5d %s@." chip_name 1 (Mf_util.Fail.to_string f)
      | Ok base ->
        Format.printf "%-12s %5d %10.1f %8d %8d %7d %10s@." chip_name 1 wall1
          base.Mf_testgen.Pathgen.ilp_nodes base.Mf_testgen.Pathgen.solver.Mf_ilp.Ilp.rs_batches
          base.Mf_testgen.Pathgen.solver.Mf_ilp.Ilp.rs_cover_cuts "-";
        List.iter
          (fun j ->
            let wall, r = Domain_pool.with_pool ~jobs:j (fun pool -> run ~pool chip) in
            match r with
            | Error f ->
              mismatches := Printf.sprintf "%s jobs=%d failed: %s" chip_name j
                              (Mf_util.Fail.to_string f) :: !mismatches
            | Ok c ->
              let same = fingerprint c = fingerprint base in
              if not same then
                mismatches := Printf.sprintf "%s: jobs=%d diverged from jobs=1" chip_name j
                              :: !mismatches;
              Format.printf "%-12s %5d %10.1f %8d %8d %7d %10b@." chip_name j wall
                c.Mf_testgen.Pathgen.ilp_nodes c.Mf_testgen.Pathgen.solver.Mf_ilp.Ilp.rs_batches
                c.Mf_testgen.Pathgen.solver.Mf_ilp.Ilp.rs_cover_cuts same)
          [ 4; 8 ])
    chips;
  Format.printf "@.-- presolve + cover cuts: explored nodes at equal objectives --@.";
  Format.printf "%-12s %10s %10s %10s %10s@." "chip" "nodes on" "nodes off" "reduction"
    "objective";
  List.iter
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      let _, on = run chip in
      let _, off = run ~presolve:false ~cuts:false chip in
      match (on, off) with
      | Ok on, Ok off ->
        let obj c = List.length c.Mf_testgen.Pathgen.added_edges in
        let n_on = on.Mf_testgen.Pathgen.ilp_nodes
        and n_off = off.Mf_testgen.Pathgen.ilp_nodes in
        let red = 100. *. (1. -. (float_of_int n_on /. float_of_int (max 1 n_off))) in
        if obj on <> obj off then
          mismatches := Printf.sprintf "%s: objective drifted under presolve/cuts (%d vs %d)"
                          chip_name (obj on) (obj off) :: !mismatches;
        Format.printf "%-12s %10d %10d %9.1f%% %10s@." chip_name n_on n_off red
          (if obj on = obj off then Printf.sprintf "%d = %d" (obj on) (obj off)
           else Printf.sprintf "%d <> %d!" (obj on) (obj off))
      | (Error f, _ | _, Error f) ->
        mismatches := Printf.sprintf "%s: ablation run failed: %s" chip_name
                        (Mf_util.Fail.to_string f) :: !mismatches)
    chips;
  (* the path-synthesis rows are unit-coefficient covering constraints, so
     knapsack covers never separate there and the node counts above are
     budget-pinned; this corpus has the coefficient spread the cover cuts
     target, and the search runs to proven optimality *)
  Format.printf "@.-- presolve + extended cover cuts on a knapsack corpus (12 models) --@.";
  let tot_on = ref 0 and tot_off = ref 0 in
  for seed = 1 to 12 do
    let build () =
      let rng = Rng.create ~seed in
      let n = 18 + Rng.int rng 6 in
      let ilp = Mf_ilp.Ilp.create () in
      let vars =
        Array.init n (fun _ ->
            Mf_ilp.Ilp.add_binary ~obj:(-.float_of_int (1 + Rng.int rng 9)) ilp)
      in
      let m = 4 + Rng.int rng 3 in
      for _ = 1 to m do
        let terms =
          Array.to_list
            (Array.map (fun v -> (float_of_int (1 + Rng.int rng 7), v)) vars)
        in
        let total = List.fold_left (fun a (c, _) -> a +. c) 0. terms in
        Mf_ilp.Ilp.add_row ilp terms Mf_ilp.Ilp.Le (0.35 *. total)
      done;
      ilp
    in
    let run reductions =
      let ilp = build () in
      match
        Mf_ilp.Ilp.solve ~node_limit:200_000 ~presolve:reductions ~cuts:reductions ilp
      with
      | Mf_ilp.Ilp.Optimal { objective; _ } ->
        Some (objective, (Mf_ilp.Ilp.last_stats ilp).Mf_ilp.Ilp.rs_nodes)
      | _ -> None
    in
    match (run true, run false) with
    | Some (o_on, n_on), Some (o_off, n_off) ->
      if o_on <> o_off then
        mismatches :=
          Printf.sprintf "knapsack %d: objective drifted under presolve/cuts" seed
          :: !mismatches;
      tot_on := !tot_on + n_on;
      tot_off := !tot_off + n_off
    | _ ->
      mismatches := Printf.sprintf "knapsack %d: not solved to optimality" seed :: !mismatches
  done;
  Format.printf "nodes with reductions %d, without %d: %.1f%% fewer at equal objectives@."
    !tot_on !tot_off
    (100. *. (1. -. (float_of_int !tot_on /. float_of_int (max 1 !tot_off))));
  match !mismatches with
  | [] -> Format.printf "@.ilp sweep: PASS (jobs=1/4/8 bit-identical, ablation objectives equal)@."
  | ms ->
    Format.printf "@.ilp sweep: FAIL@.";
    List.iter (fun m -> Format.printf "  - %s@." m) (List.rev ms);
    exit 1

(* ------------------------------------------------------------------ *)
(* Scheduler fast-path benchmark: (1) differential matrix — the cached
   bitset/CSR fast path vs the first-principles reference on every
   benchmark chip x assay, makespans pinned equal; (2) the codesign fitness
   scenario the tentpole targets — ivd_chip x cpa with a prebuilt pool,
   cutoff on vs off, results pinned identical.  Gated against the committed
   BENCH_sched.json (wall tolerance as the LP gate; any makespan/objective
   mismatch fails). *)

module Scheduler = Mf_sched.Scheduler

let sched_baseline_path = "BENCH_sched.json"

let sched ~write_baseline () =
  Format.printf "@.== Sched: scheduler fast path vs reference, and bounded codesign fitness ==@.@.";
  let entries = ref [] in
  let hard_failures = ref [] in
  let now = Unix.gettimeofday in
  (* part 1: simulation matrix *)
  Format.printf "%-12s %-6s %9s %10s %10s %8s %8s %8s@." "chip" "assay" "makespan" "fast[ms]"
    "ref[ms]" "speedup" "steps" "routes";
  List.iter
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      let prep = Mf_sched.Prep.of_chip chip in
      List.iter
        (fun assay ->
          let app = Option.get (Assays.by_name assay) in
          let s0 = Scheduler.Stats.snapshot () in
          let fast_m = Scheduler.makespan ~prep chip app in
          let s1 = Scheduler.Stats.snapshot () in
          let steps = s1.Scheduler.Stats.steps - s0.Scheduler.Stats.steps in
          let routes = s1.Scheduler.Stats.routes - s0.Scheduler.Stats.routes in
          let reps = 10 in
          let t0 = now () in
          for _ = 1 to reps do
            ignore (Scheduler.makespan ~prep chip app)
          done;
          let fast_ms = (now () -. t0) *. 1e3 /. float_of_int reps in
          let t0 = now () in
          let ref_m =
            match Scheduler.run_reference chip app with
            | Ok s -> Some s.Mf_sched.Schedule.makespan
            | Error _ -> None
          in
          let ref_ms = (now () -. t0) *. 1e3 in
          if fast_m <> ref_m then
            hard_failures :=
              Printf.sprintf "%s/%s: fast makespan %s <> reference %s" chip_name assay
                (match fast_m with Some m -> string_of_int m | None -> "-")
                (match ref_m with Some m -> string_of_int m | None -> "-")
              :: !hard_failures;
          Format.printf "%-12s %-6s %9s %10.3f %10.3f %7.1fx %8d %8d@." chip_name assay
            (match fast_m with Some m -> string_of_int m | None -> "-")
            fast_ms ref_ms (ref_ms /. fast_ms) steps routes;
          entries :=
            {
              Perf_json.s_name = chip_name ^ "/" ^ assay;
              s_wall_ms = fast_ms;
              s_makespan = (match fast_m with Some m -> m | None -> -1);
              s_steps = steps;
              s_routes = routes;
            }
            :: !entries)
        assays)
    chips;
  (* part 2: the PSO fitness hot loop — one full codesign run on the
     scheduler-bound pair, bounded (cutoff on) vs exhaustive (cutoff off) *)
  let chip = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Option.get (Assays.by_name "cpa") in
  let params = { Codesign.quick_params with Codesign.jobs = 1 } in
  let pool =
    let rng = Rng.create ~seed:params.Codesign.seed in
    Domain_pool.with_pool ~jobs (fun domains ->
        Pool.build ~size:params.Codesign.pool_size ~node_limit:params.Codesign.ilp_node_limit
          ~domains ~rng chip)
  in
  (match pool with
   | Error f -> hard_failures := ("pool build failed: " ^ Mf_util.Fail.to_string f) :: !hard_failures
   | Ok pool ->
     let fingerprint (r : Codesign.result) =
       ( r.Codesign.exec_final,
         r.Codesign.exec_original,
         r.Codesign.exec_dft_unshared,
         r.Codesign.exec_dft_no_pso,
         r.Codesign.sharing,
         r.Codesign.trace,
         r.Codesign.evaluations )
     in
     let measure cutoff =
       let s0 = Scheduler.Stats.snapshot () in
       let t0 = now () in
       let r =
         Codesign.run ~params:{ params with Codesign.sched_cutoff = cutoff } ~pool chip app
       in
       let wall = (now () -. t0) *. 1e3 in
       let s1 = Scheduler.Stats.snapshot () in
       (r, wall, s1.Scheduler.Stats.steps - s0.Scheduler.Stats.steps,
        s1.Scheduler.Stats.routes - s0.Scheduler.Stats.routes,
        s1.Scheduler.Stats.cutoffs - s0.Scheduler.Stats.cutoffs)
     in
     let r_on, wall_on, steps_on, routes_on, cuts_on = measure true in
     let r_off, wall_off, steps_off, _, _ = measure false in
     (match (r_on, r_off) with
      | Ok on, Ok off ->
        let identical = fingerprint on = fingerprint off in
        Format.printf
          "@.codesign ivd_chip/cpa (quick, jobs=1, prebuilt pool):@.  cutoff on:  %8.0f ms  \
           (%d event-loop steps, %d cutoffs)@.  cutoff off: %8.0f ms  (%d event-loop \
           steps)@.  step ratio %.2fx, wall ratio %.2fx, results identical: %b@."
          wall_on steps_on cuts_on wall_off steps_off
          (float_of_int steps_off /. float_of_int (max 1 steps_on))
          (wall_off /. wall_on) identical;
        if not identical then
          hard_failures := "codesign results differ between cutoff on and off" :: !hard_failures;
        entries :=
          {
            Perf_json.s_name = "codesign:ivd_chip/cpa";
            s_wall_ms = wall_on;
            s_makespan = (match on.Codesign.exec_final with Some m -> m | None -> -1);
            s_steps = steps_on;
            s_routes = routes_on;
          }
          :: !entries
      | (Error f, _ | _, Error f) ->
        hard_failures := ("codesign failed: " ^ Mf_util.Fail.to_string f) :: !hard_failures));
  let doc =
    { Perf_json.s_jobs = jobs; s_cores = Perf_json.this_cores (); s_entries = List.rev !entries }
  in
  (match !hard_failures with
   | [] -> ()
   | fs ->
     Format.printf "@.sched gate: FAIL@.";
     List.iter (fun m -> Format.printf "  - %s@." m) (List.rev fs);
     exit 1);
  if write_baseline then begin
    Perf_json.save_sched sched_baseline_path doc;
    Format.printf "@.baseline written to %s@." sched_baseline_path
  end
  else begin
    match Perf_json.load_sched sched_baseline_path with
    | Error msg ->
      Format.printf "@.no usable baseline (%s); run `bench -- sched-baseline` to create one@."
        msg
    | Ok baseline ->
      let failures, notes = Perf_json.compare_sched ~baseline doc in
      List.iter (fun m -> Format.printf "note: %s@." m) notes;
      (match failures with
       | [] ->
         Format.printf
           "sched gate: PASS (within %.0f%% of baseline wall, makespans/objectives exact)@."
           ((Perf_json.tolerance -. 1.) *. 100.)
       | failures ->
         Format.printf "sched gate: FAIL@.";
         List.iter (fun m -> Format.printf "  - %s@." m) failures;
         exit 1)
  end

(* ------------------------------------------------------------------ *)
(* Family scaling sweep: makespan simulation and ILP path synthesis wall
   clock versus chip size, across every family in [Mf_chips.Families] —
   the first evidence the pipeline behaves off the 3-chip benchmark
   manifold.  Chip and assay are a pure function of (family, size), so
   every non-wall column is deterministic and gated exactly against
   BENCH_scale.json. *)

module Families = Mf_chips.Families
module Synth_assay = Mf_bioassay.Synth_assay

let scale_baseline_path = "BENCH_scale.json"

let scale_point (f : Families.family) size =
  let salt =
    match f.Families.name with "ring" -> 1 | "fpva" -> 2 | "storage" -> 3 | _ -> 9
  in
  let rng = Rng.create ~seed:(7000 + (1000 * salt) + size) in
  let chip = f.Families.generate_size ~size rng in
  let profile =
    match f.Families.profile with
    | Families.Balanced -> Synth_assay.Balanced
    | Families.Storage_pressure -> Synth_assay.Storage_pressure
  in
  let spec = Synth_assay.spec_of_size ~profile (f.Families.assay_ops ~size) in
  let app = Synth_assay.generate ~spec rng in
  let now = Unix.gettimeofday in
  let prep = Mf_sched.Prep.of_chip chip in
  let makespan = Mf_sched.Scheduler.makespan ~prep chip app in
  let reps = 5 in
  let t0 = now () in
  for _ = 1 to reps do
    ignore (Mf_sched.Scheduler.makespan ~prep chip app)
  done;
  let sched_ms = (now () -. t0) *. 1e3 /. float_of_int reps in
  let t0 = now () in
  let path = Mf_testgen.Pathgen.generate ~node_limit:400 chip in
  let ilp_ms = (now () -. t0) *. 1e3 in
  let added, paths =
    match path with
    | Ok c -> (List.length c.Mf_testgen.Pathgen.added_edges, c.Mf_testgen.Pathgen.n_paths)
    | Error _ -> (-1, -1)
  in
  let count_channels chip =
    let n = ref 0 in
    Mf_graph.Graph.iter_edges
      (fun e _ _ -> if Chip.is_channel chip e then incr n)
      (Mf_grid.Grid.graph (Chip.grid chip));
    !n
  in
  {
    Perf_json.c_name = Printf.sprintf "%s/%d" f.Families.name size;
    c_channels = count_channels chip;
    c_valves = Chip.n_valves chip;
    c_sched_ms = sched_ms;
    c_makespan = (match makespan with Some m -> m | None -> -1);
    c_ilp_ms = ilp_ms;
    c_added = added;
    c_paths = paths;
  }

let scale ~write_baseline () =
  Format.printf "@.== Scale: makespan / ILP wall clock vs chip size, per family ==@.@.";
  Format.printf "%-12s %9s %8s %10s %10s %10s %7s %7s@." "family/size" "channels" "valves"
    "sched[ms]" "makespan" "ilp[ms]" "added" "paths";
  let entries =
    List.concat_map
      (fun (f : Families.family) ->
        List.map
          (fun size ->
            let e = scale_point f size in
            Format.printf "%-12s %9d %8d %10.2f %10d %10.0f %7d %7d@." e.Perf_json.c_name
              e.Perf_json.c_channels e.Perf_json.c_valves e.Perf_json.c_sched_ms
              e.Perf_json.c_makespan e.Perf_json.c_ilp_ms e.Perf_json.c_added
              e.Perf_json.c_paths;
            e)
          f.Families.sweep_sizes)
      Families.all
  in
  let doc = { Perf_json.c_jobs = jobs; c_cores = Perf_json.this_cores (); c_entries = entries } in
  if write_baseline then begin
    Perf_json.save_scale scale_baseline_path doc;
    Format.printf "@.baseline written to %s@." scale_baseline_path
  end
  else begin
    match Perf_json.load_scale scale_baseline_path with
    | Error msg ->
      Format.printf "@.no usable baseline (%s); run `bench -- scale-baseline` to create one@."
        msg
    | Ok baseline ->
      let failures, notes = Perf_json.compare_scale ~baseline doc in
      List.iter (fun m -> Format.printf "note: %s@." m) notes;
      (match failures with
       | [] ->
         Format.printf
           "scale gate: PASS (within %.0f%% of baseline wall, shapes/makespans/objectives \
            exact)@."
           ((Perf_json.tolerance -. 1.) *. 100.)
       | failures ->
         Format.printf "scale gate: FAIL@.";
         List.iter (fun m -> Format.printf "  - %s@." m) failures;
         exit 1)
  end

(* ------------------------------------------------------------------ *)
(* Fault-adaptive repair vs full codesign: every benchmark chip x assay —
   plus one fpva and one storage family point — runs the codesign flow
   once, injects a single seed-stable valve fault on the deployed (shared)
   chip, and repairs the certified suite incrementally with
   [Mf_repair.Reconfig].  The gate proves the headline claim: repair is at
   least [repair_min_speedup]x cheaper than re-running codesign, the
   repaired suite re-certifies with zero errors, and every deterministic
   count matches BENCH_repair.json exactly.  Codesign is timed with a
   prebuilt pool, so the speedup understates what a redeployment (pool
   included) would cost — the gate errs against the claim. *)

module Reconfig = Mf_repair.Reconfig

let repair_baseline_path = "BENCH_repair.json"
let repair_min_speedup = 10.

let repair_bench ~write_baseline () =
  Format.printf "@.== Repair: incremental fault-adaptive retest vs full codesign ==@.@.";
  let params = { Codesign.quick_params with Codesign.jobs } in
  let entries = ref [] in
  let hard_failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> hard_failures := m :: !hard_failures) fmt in
  let now = Unix.gettimeofday in
  Format.printf "%-16s %10s %11s %8s %8s %6s %9s %7s@." "point" "full[ms]" "repair[ms]"
    "speedup" "dropped" "added" "coverage" "waived";
  let run_point name ~pool chip app =
    let t0 = now () in
    match Codesign.run ~params ~pool chip app with
    | Error f -> fail "%s: codesign failed: %s" name (Mf_util.Fail.to_string f)
    | Ok r ->
      let full_ms = (now () -. t0) *. 1e3 in
      let deployed = r.Codesign.shared in
      let fault =
        match
          Mf_util.Chaos.sample_sites ~seed:params.Codesign.seed ~count:1
            ~n_sites:(Chip.n_valves deployed)
        with
        | v :: _ -> Mf_faults.Fault.Stuck_at_1 v
        | [] -> assert false (* every deployed chip carries valves *)
      in
      let t0 = now () in
      let rp =
        Reconfig.repair
          ~params:
            { Reconfig.default_params with Reconfig.seed = params.Codesign.seed; jobs }
          ~app
          ~sharing:(r.Codesign.augmented, r.Codesign.sharing)
          deployed r.Codesign.suite [ fault ]
      in
      let repair_ms = (now () -. t0) *. 1e3 in
      (match rp with
       | Error f -> fail "%s: repair failed: %s" name (Mf_util.Fail.to_string f)
       | Ok rr ->
         let n_err, _ = Mf_util.Diag.count rr.Reconfig.diags in
         if n_err > 0 then fail "%s: repaired suite re-certified with %d error(s)" name n_err;
         let speedup = full_ms /. repair_ms in
         if speedup < repair_min_speedup then
           fail "%s: repair only %.1fx cheaper than full codesign (gate: %.0fx)" name speedup
             repair_min_speedup;
         let st = rr.Reconfig.stats in
         let cov = rr.Reconfig.coverage in
         Format.printf "%-16s %10.0f %11.1f %7.0fx %8d %6d %5d/%-3d %7d@." name full_ms
           repair_ms speedup st.Reconfig.damaged st.Reconfig.added
           cov.Mf_faults.Coverage.detected cov.Mf_faults.Coverage.total_faults
           (List.length rr.Reconfig.untestable);
         entries :=
           {
             Perf_json.r_name = name;
             r_full_ms = full_ms;
             r_repair_ms = repair_ms;
             r_dropped = st.Reconfig.damaged;
             r_added = st.Reconfig.added;
             r_detected = cov.Mf_faults.Coverage.detected;
             r_total = cov.Mf_faults.Coverage.total_faults;
             r_vectors = Mf_testgen.Vectors.count rr.Reconfig.suite;
             r_waived = List.length rr.Reconfig.untestable;
             r_makespan = (match rr.Reconfig.exec_after with Some m -> m | None -> -1);
           }
           :: !entries)
  in
  let with_pool chip k =
    let rng = Rng.create ~seed:params.Codesign.seed in
    let pool =
      Domain_pool.with_pool ~jobs (fun domains ->
          Pool.build ~size:params.Codesign.pool_size
            ~node_limit:params.Codesign.ilp_node_limit ~domains ~rng chip)
    in
    match pool with
    | Error f -> fail "%s: pool build failed: %s" (Chip.name chip) (Mf_util.Fail.to_string f)
    | Ok pool -> k pool
  in
  List.iter
    (fun chip_name ->
      let chip = Option.get (Benchmarks.by_name chip_name) in
      with_pool chip (fun pool ->
          List.iter
            (fun assay ->
              let app = Option.get (Assays.by_name assay) in
              run_point (chip_name ^ "/" ^ assay) ~pool chip app)
            assays))
    chips;
  (* one point off the benchmark manifold per synthesized family, at its
     smallest sweep size; chip and assay are pure functions of (family,
     size), same salts as the scale sweep *)
  List.iter
    (fun (fname, size) ->
      let f = Option.get (Families.by_name fname) in
      let salt = match fname with "ring" -> 1 | "fpva" -> 2 | "storage" -> 3 | _ -> 9 in
      let rng = Rng.create ~seed:(7000 + (1000 * salt) + size) in
      let chip = f.Families.generate_size ~size rng in
      let profile =
        match f.Families.profile with
        | Families.Balanced -> Synth_assay.Balanced
        | Families.Storage_pressure -> Synth_assay.Storage_pressure
      in
      let spec = Synth_assay.spec_of_size ~profile (f.Families.assay_ops ~size) in
      let app = Synth_assay.generate ~spec rng in
      with_pool chip (fun pool ->
          run_point (Printf.sprintf "%s/%d" fname size) ~pool chip app))
    [ ("fpva", 5); ("storage", 6) ];
  let doc =
    { Perf_json.r_jobs = jobs; r_cores = Perf_json.this_cores (); r_entries = List.rev !entries }
  in
  (match !hard_failures with
   | [] -> ()
   | fs ->
     Format.printf "@.repair gate: FAIL@.";
     List.iter (fun m -> Format.printf "  - %s@." m) (List.rev fs);
     exit 1);
  if write_baseline then begin
    Perf_json.save_repair repair_baseline_path doc;
    Format.printf "@.baseline written to %s@." repair_baseline_path
  end
  else begin
    match Perf_json.load_repair repair_baseline_path with
    | Error msg ->
      Format.printf "@.no usable baseline (%s); run `bench -- repair-baseline` to create one@."
        msg
    | Ok baseline ->
      let failures, notes = Perf_json.compare_repair ~baseline doc in
      List.iter (fun m -> Format.printf "note: %s@." m) notes;
      (match failures with
       | [] ->
         Format.printf
           "repair gate: PASS (>=%.0fx vs codesign, 0 cert errors, counts exact, wall \
            within %.0f%%)@."
           repair_min_speedup
           ((Perf_json.tolerance -. 1.) *. 100.)
       | failures ->
         Format.printf "repair gate: FAIL@.";
         List.iter (fun m -> Format.printf "  - %s@." m) failures;
         exit 1)
  end

(* ------------------------------------------------------------------ *)
(* Serve-mode engine benchmark: the daemon's value proposition in numbers
   — cold codesign solves through the job engine, cache-hit service
   latency for identical resubmissions, and resubmission throughput
   against a warm cache.  Three self-gates run on the current numbers
   alone (every hit at least [serve_min_hit_ratio]x under its cold solve;
   cached payloads byte-identical to the cold payload; an independent
   second engine's cold solve byte-identical to the first); then
   fingerprints, result digests and wall clocks are gated against the
   committed BENCH_serve.json. *)

module Engine = Mf_serve.Engine
module Sproto = Mf_serve.Protocol
module Sjson = Mf_serve.Json
module Scache = Mf_serve.Cache

let serve_baseline_path = "BENCH_serve.json"
let serve_pairs = [ ("ivd_chip", "ivd"); ("ra30_chip", "pid"); ("mrna_chip", "cpa") ]
let serve_min_hit_ratio = 100.

let serve_bench ~write_baseline () =
  Format.printf "@.== Serve: engine cold solves vs cache hits vs warm resubmission ==@.@.";
  let hard_failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> hard_failures := m :: !hard_failures) fmt in
  let now = Unix.gettimeofday in
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path
  in
  let fresh_dir tag =
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "mfdft-bench-serve-%d-%s" (Unix.getpid ()) tag)
    in
    if Sys.file_exists dir then rm dir;
    dir
  in
  let spec chip assay =
    {
      Sproto.chip = Sproto.Name chip;
      assay = Sproto.Name assay;
      options = Mf_serve.Fingerprint.default_options;
      priority = 0;
      deadline = None;
      wait = true;
    }
  in
  let digest_of payload =
    match Sjson.parse payload with
    | Ok j -> (match Sjson.str_field "result_digest" j with Some d -> d | None -> "?")
    | Error _ -> "?"
  in
  (* one cold solve through the engine, timed from submit to outcome *)
  let solve_cold eng s name =
    let outcome = ref None in
    let t0 = now () in
    match Engine.submit eng s ~on_event:ignore ~on_done:(fun o -> outcome := Some o) with
    | Error msg ->
      fail "%s: submit refused: %s" name msg;
      None
    | Ok (_, Engine.Cached _) ->
      fail "%s: expected a cold solve, got a cache hit" name;
      None
    | Ok (fp, (Engine.Enqueued _ | Engine.Joined _)) ->
      (match Engine.run_next eng with `Ran -> () | `Idle -> ());
      let wall_ms = (now () -. t0) *. 1e3 in
      (match !outcome with
       | Some (Engine.Payload p) -> Some (fp, p, wall_ms)
       | Some (Engine.Failed msg) ->
         fail "%s: solve failed: %s" name msg;
         None
       | Some Engine.Checkpointed ->
         fail "%s: solve checkpointed without a stop request" name;
         None
       | None ->
         fail "%s: no outcome delivered after run_next" name;
         None)
  in
  let state_dir = fresh_dir "main" in
  let eng = Engine.create ~jobs ~state_dir () in
  Format.printf "%-16s %10s %10s %9s  %s@." "point" "cold[ms]" "hit[ms]" "ratio" "digest";
  let entries =
    List.filter_map
      (fun (chip, assay) ->
        let name = chip ^ "/" ^ assay in
        let s = spec chip assay in
        match solve_cold eng s name with
        | None -> None
        | Some (fp, cold_payload, cold_ms) ->
          (* hit latency: identical resubmissions must be served from the
             store, byte-identical, without running anything *)
          let reps = 25 in
          let hits = ref [] in
          let t0 = now () in
          for _ = 1 to reps do
            match Engine.submit eng s ~on_event:ignore ~on_done:ignore with
            | Ok (_, Engine.Cached p) -> hits := p :: !hits
            | Ok (_, (Engine.Enqueued _ | Engine.Joined _)) ->
              fail "%s: resubmission was not served from the cache" name
            | Error msg -> fail "%s: resubmission refused: %s" name msg
          done;
          let hit_ms = (now () -. t0) *. 1e3 /. float_of_int reps in
          List.iter
            (fun p ->
              if p <> cold_payload then
                fail "%s: cached payload differs from the cold payload" name)
            !hits;
          let ratio = cold_ms /. hit_ms in
          if ratio < serve_min_hit_ratio then
            fail "%s: cache hit only %.0fx under cold (gate: %.0fx)" name ratio
              serve_min_hit_ratio;
          let digest = digest_of cold_payload in
          Format.printf "%-16s %10.0f %10.3f %8.0fx  %s@." name cold_ms hit_ms ratio digest;
          Some
            ( {
                Perf_json.v_name = name;
                v_fingerprint = fp;
                v_digest = digest;
                v_cold_ms = cold_ms;
                v_hit_ms = hit_ms;
              },
              cold_payload,
              s ))
      serve_pairs
  in
  (* byte-identity across engines: a second engine with its own empty
     cache (and jobs=1, exercising the cross-parallelism claim when
     MFDFT_JOBS is exported) must reproduce the first payload line *)
  (match entries with
   | ({ Perf_json.v_name; _ }, cold_payload, _) :: _ ->
     let chip, assay = List.hd serve_pairs in
     let dir2 = fresh_dir "indep" in
     let eng2 = Engine.create ~jobs:1 ~state_dir:dir2 () in
     (match solve_cold eng2 (spec chip assay) (v_name ^ " (independent engine)") with
      | Some (_, p2, _) ->
        if p2 <> cold_payload then
          fail "%s: independent cold solve produced a different payload line" v_name
        else Format.printf "@.independent engine reproduced %s byte-identically@." v_name
      | None -> ());
     Engine.shutdown eng2;
     rm dir2
   | [] -> ());
  (* warm throughput: every solved pair resubmitted round-robin against
     the now-warm cache — the daemon's steady state for repeated work.
     Individual hits are tens of microseconds, so the phase runs for a
     fixed wall window to keep the jobs/s estimate stable enough for the
     25% gate. *)
  let warm_window = 0.2 in
  let served = ref 0 in
  let t0 = now () in
  while entries <> [] && now () -. t0 < warm_window do
    List.iter
      (fun (e, _, s) ->
        match Engine.submit eng s ~on_event:ignore ~on_done:ignore with
        | Ok (_, Engine.Cached _) -> incr served
        | Ok (_, (Engine.Enqueued _ | Engine.Joined _)) | Error _ ->
          fail "warm phase: %s not served from the cache" e.Perf_json.v_name)
      entries
  done;
  let warm_wall = max 1e-6 (now () -. t0) in
  let warm_jobs_per_s = float_of_int !served /. warm_wall in
  Format.printf "@.warm throughput: %d resubmissions in %.0f ms -> %.1f jobs/s@." !served
    (warm_wall *. 1e3) warm_jobs_per_s;
  let st = Engine.stats eng in
  Format.printf "engine: %d solve(s), %d join(s); cache: %d mem / %d disk hit(s), %d miss(es), %d corrupt@."
    st.Engine.solves st.Engine.joins st.Engine.cache.Scache.mem_hits
    st.Engine.cache.Scache.disk_hits st.Engine.cache.Scache.misses
    st.Engine.cache.Scache.corrupt;
  Engine.shutdown eng;
  rm state_dir;
  let doc =
    {
      Perf_json.v_jobs = jobs;
      v_cores = Perf_json.this_cores ();
      v_warm_jobs_per_s = warm_jobs_per_s;
      v_entries = List.map (fun (e, _, _) -> e) entries;
    }
  in
  (match !hard_failures with
   | [] -> ()
   | fs ->
     Format.printf "@.serve gate: FAIL@.";
     List.iter (fun m -> Format.printf "  - %s@." m) (List.rev fs);
     exit 1);
  if write_baseline then begin
    Perf_json.save_serve serve_baseline_path doc;
    Format.printf "@.baseline written to %s@." serve_baseline_path
  end
  else begin
    match Perf_json.load_serve serve_baseline_path with
    | Error msg ->
      Format.printf "@.no usable baseline (%s); run `bench -- serve-baseline` to create one@."
        msg
    | Ok baseline ->
      let failures, notes = Perf_json.compare_serve ~baseline doc in
      List.iter (fun m -> Format.printf "note: %s@." m) notes;
      (match failures with
       | [] ->
         Format.printf
           "serve gate: PASS (hits >=%.0fx under cold, payloads byte-identical, \
            fingerprints/digests exact, wall within %.0f%%)@."
           serve_min_hit_ratio
           ((Perf_json.tolerance -. 1.) *. 100.)
       | failures ->
         Format.printf "serve gate: FAIL@.";
         List.iter (fun m -> Format.printf "  - %s@." m) failures;
         exit 1)
  end

(* ------------------------------------------------------------------ *)
(* bechamel micro-benchmarks *)

let micro () =
  let open Bechamel in
  let open Toolkit in
  let ivd = Option.get (Benchmarks.by_name "ivd_chip") in
  let app = Assays.ivd () in
  let config =
    match Mf_testgen.Pathgen.generate ~node_limit:300 ivd with
    | Ok c -> c
    | Error f -> failwith (Mf_util.Fail.to_string f)
  in
  let aug = Mf_testgen.Pathgen.apply ivd config in
  let suite =
    Mf_testgen.Vectors.of_config config
      (Mf_testgen.Cutgen.generate aug ~source:config.Mf_testgen.Pathgen.src_port
         ~meter:config.Mf_testgen.Pathgen.dst_port)
  in
  let tests =
    [
      Test.make ~name:"pathgen-ivd" (Staged.stage (fun () ->
          ignore (Mf_testgen.Pathgen.generate ~node_limit:100 ivd)));
      Test.make ~name:"cutgen-ivd" (Staged.stage (fun () ->
          ignore
            (Mf_testgen.Cutgen.generate aug ~source:config.Mf_testgen.Pathgen.src_port
               ~meter:config.Mf_testgen.Pathgen.dst_port)));
      Test.make ~name:"fault-sim-validate-ivd" (Staged.stage (fun () ->
          ignore (Mf_testgen.Vectors.validate aug suite)));
      Test.make ~name:"schedule-ivd-on-ivd-chip" (Staged.stage (fun () ->
          ignore (Mf_sched.Scheduler.makespan ivd app)));
      Test.make ~name:"pso-100-evals-sphere" (Staged.stage (fun () ->
          let rng = Rng.create ~seed:1 in
          ignore
            (Pso.run
               ~params:{ Pso.default_params with particles = 5; iterations = 19 }
               ~rng ~dim:8
               ~fitness:(fun x -> Array.fold_left (fun a v -> a +. (v *. v)) 0. x)
               ())));
      Test.make ~name:"multiport-vectors-ivd" (Staged.stage (fun () ->
          ignore (Mf_testgen.Multiport.generate ivd)));
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.5) () in
  Format.printf "@.== Micro-benchmarks (bechamel, monotonic clock) ==@.@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> Format.printf "%-30s %14.0f ns/run@." name est
          | Some [] | None -> Format.printf "%-30s (no estimate)@." name)
        analyzed)
    tests;
  speedup ()

(* ------------------------------------------------------------------ *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = if args = [] then [ "table1"; "fig7"; "fig8"; "fig9" ] else args in
  let full = List.mem "full" args in
  let params =
    { (if full then Codesign.default_params else Codesign.quick_params) with Codesign.jobs }
  in
  let wants name =
    full || List.mem name args || List.mem "all" args
  in
  let needs_rows =
    full
    || List.exists (fun a -> List.mem a args) [ "table1"; "fig7"; "fig8"; "fig9"; "all" ]
  in
  Format.printf
    "mfdft reproduction harness (%s PSO budgets: %d outer x %d inner iterations, %d job%s)@."
    (if full then "paper-scale" else "quick")
    params.Codesign.outer.Pso.iterations params.Codesign.inner.Pso.iterations jobs
    (if jobs = 1 then "" else "s");
  let rows = if needs_rows then evaluate ~params else [] in
  if needs_rows && wants "table1" then print_table1 rows;
  if needs_rows && wants "fig7" then print_fig7 rows;
  if needs_rows && wants "fig8" then print_fig8 rows;
  if needs_rows && wants "fig9" then print_fig9 rows;
  if wants "ablate" then print_ablations ();
  (* perf is explicit-only: its regression gate compares wall-clock against
     a committed baseline and exits nonzero on failure *)
  if List.mem "perf" args then perf ~write_baseline:false ();
  if List.mem "perf-baseline" args then perf ~write_baseline:true ();
  (* ilp is explicit-only: jobs-sweep identity check exits nonzero on divergence *)
  if List.mem "ilp" args then ilp_sweep ();
  (* sched is explicit-only for the same reason: gated vs BENCH_sched.json *)
  if List.mem "sched" args then sched ~write_baseline:false ();
  if List.mem "sched-baseline" args then sched ~write_baseline:true ();
  (* scale too: family sweep gated vs BENCH_scale.json *)
  if List.mem "scale" args then scale ~write_baseline:false ();
  if List.mem "scale-baseline" args then scale ~write_baseline:true ();
  (* repair too: fault-adaptive retest gated vs BENCH_repair.json *)
  if List.mem "repair" args then repair_bench ~write_baseline:false ();
  if List.mem "repair-baseline" args then repair_bench ~write_baseline:true ();
  (* serve too: engine cold/hit/warm latency gated vs BENCH_serve.json *)
  if List.mem "serve" args then serve_bench ~write_baseline:false ();
  if List.mem "serve-baseline" args then serve_bench ~write_baseline:true ();
  (* chaos is opt-in only: it deliberately breaks determinism *)
  if List.mem "chaos" args then chaos_bench ();
  if List.mem "verify" args || List.mem "all" args then verify_bench ();
  if List.mem "micro" args || List.mem "all" args then micro ()
