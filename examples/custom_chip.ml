(* Bring-your-own biochip: build a custom architecture with the public
   builder API, define a custom bioassay, make the chip single-source
   single-meter testable, and schedule the assay before and after DFT.

   Run with:  dune exec examples/custom_chip.exe *)

module Chip = Mf_arch.Chip
module Op = Mf_bioassay.Op
module Seqgraph = Mf_bioassay.Seqgraph
module Pathgen = Mf_testgen.Pathgen
module Cutgen = Mf_testgen.Cutgen
module Vectors = Mf_testgen.Vectors
module Scheduler = Mf_sched.Scheduler

(* A small two-module chip: one mixer, one heater, three ports. *)
let my_chip () =
  let b = Chip.builder ~name:"demo_chip" ~width:6 ~height:4 in
  Chip.add_device b ~kind:Chip.Mixer ~x:2 ~y:0 ~name:"mixer";
  Chip.add_device b ~kind:Chip.Heater ~x:3 ~y:3 ~name:"heater";
  Chip.add_device b ~kind:Chip.Detector ~x:4 ~y:0 ~name:"camera";
  Chip.add_port b ~x:0 ~y:1 ~name:"sample_in";
  Chip.add_port b ~x:5 ~y:2 ~name:"waste";
  Chip.add_port b ~x:2 ~y:3 ~name:"reagent_in";
  (* transport bus *)
  Chip.add_channel b [ (1, 1); (2, 1); (3, 1); (4, 1); (4, 2); (3, 2); (2, 2); (1, 2); (1, 1) ];
  (* device and port spurs *)
  Chip.add_channel b [ (2, 1); (2, 0) ];
  Chip.add_channel b [ (3, 2); (3, 3) ];
  Chip.add_channel b [ (4, 1); (4, 0) ];
  Chip.add_channel b [ (0, 1); (1, 1) ];
  Chip.add_channel b [ (5, 2); (4, 2) ];
  Chip.add_channel b [ (2, 3); (2, 2) ];
  (* valves: port entries + ring *)
  List.iter
    (fun (a, c) -> Chip.add_valve b a c)
    [
      ((0, 1), (1, 1)); ((5, 2), (4, 2)); ((2, 3), (2, 2));
      ((1, 1), (2, 1)); ((2, 1), (3, 1)); ((3, 1), (4, 1));
      ((4, 1), (4, 2)); ((3, 2), (2, 2)); ((2, 2), (1, 2)); ((1, 2), (1, 1));
    ];
  Chip.finish_exn b

(* sample + reagent are mixed, heated, mixed again, detected *)
let my_assay () =
  Seqgraph.create_exn
    [
      { Op.op_id = 0; kind = Op.Mix; duration = 30; op_name = "lyse" };
      { Op.op_id = 1; kind = Op.Heat; duration = 45; op_name = "denature" };
      { Op.op_id = 2; kind = Op.Mix; duration = 30; op_name = "amplify" };
      { Op.op_id = 3; kind = Op.Detect; duration = 20; op_name = "read_out" };
    ]
    ~edges:[ (0, 1); (1, 2); (2, 3) ]

let () =
  let chip = my_chip () in
  let app = my_assay () in
  Format.printf "Custom chip:@.%s@." (Chip.render chip);
  (match Scheduler.run chip app with
   | Ok s ->
     Format.printf "Assay on the original chip: %a@." Mf_sched.Schedule.pp s
   | Error f ->
     Format.printf "Assay cannot run on the original chip: %a@."
       Mf_sched.Schedule.pp_failure f);
  match Pathgen.generate chip with
  | Error f -> Format.printf "DFT generation failed: %s@." (Mf_util.Fail.to_string f)
  | Ok config ->
    let aug = Pathgen.apply chip config in
    let cuts =
      Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port
    in
    let suite = Vectors.of_config config cuts in
    let suite =
      if Vectors.is_valid aug suite then suite else Mf_testgen.Repair.run aug suite
    in
    Format.printf "@.After DFT (%d new valves):@.%s@."
      (List.length config.Pathgen.added_edges)
      (Chip.render aug);
    Format.printf "single-source single-meter suite: %d vectors, complete=%b@."
      (Vectors.count suite)
      (Vectors.is_valid aug suite);
    (match Scheduler.run aug app with
     | Ok s ->
       Format.printf "Assay on the augmented chip (free control): %a@." Mf_sched.Schedule.pp s
     | Error f -> Format.printf "augmented schedule failed: %a@." Mf_sched.Schedule.pp_failure f)
