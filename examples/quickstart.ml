(* Quickstart: the motivating example of the paper's Fig. 4.

   A three-port biochip is testable with one pressure source and two
   meters; after DFT augmentation a single source and a single meter
   suffice.  This example builds the chip, runs the ILP-based test-path
   generation, derives test cuts, and verifies by exhaustive fault
   simulation that every stuck-at-0 and stuck-at-1 defect is detected.

   Run with:  dune exec examples/quickstart.exe *)

module Chip = Mf_arch.Chip
module Pathgen = Mf_testgen.Pathgen
module Cutgen = Mf_testgen.Cutgen
module Vectors = Mf_testgen.Vectors
module Coverage = Mf_faults.Coverage
module Grid = Mf_grid.Grid

let fig4_chip () =
  let b = Chip.builder ~name:"fig4" ~width:5 ~height:5 in
  Chip.add_port b ~x:0 ~y:2 ~name:"P0";
  Chip.add_port b ~x:4 ~y:2 ~name:"P1";
  Chip.add_port b ~x:2 ~y:0 ~name:"P2";
  Chip.add_device b ~kind:Chip.Mixer ~x:2 ~y:3 ~name:"mixer";
  (* a cross of flow channels with a valve on every segment *)
  Chip.add_channel b [ (0, 2); (1, 2); (2, 2); (3, 2); (4, 2) ];
  Chip.add_channel b [ (2, 0); (2, 1); (2, 2) ];
  Chip.add_channel b [ (2, 2); (2, 3) ];
  List.iter
    (fun (a, c) -> Chip.add_valve b a c)
    [
      ((0, 2), (1, 2)); ((1, 2), (2, 2)); ((2, 2), (3, 2)); ((3, 2), (4, 2));
      ((2, 0), (2, 1)); ((2, 1), (2, 2)); ((2, 2), (2, 3));
    ];
  Chip.finish_exn b

let () =
  let chip = fig4_chip () in
  Format.printf "Original chip (%a):@.%s@." Chip.pp chip (Chip.render chip);

  (* 1. DFT augmentation: single-source single-meter test paths (Sec. 3) *)
  let config =
    match Pathgen.generate chip with
    | Ok c -> c
    | Error f -> failwith (Mf_util.Fail.to_string f)
  in
  let ports = Chip.ports chip in
  Format.printf "Test ports: source %s, meter %s (farthest pair)@."
    ports.(config.Pathgen.src_port).Chip.port_name ports.(config.Pathgen.dst_port).Chip.port_name;
  Format.printf "DFT adds %d channel/valve pairs covered by %d test paths:@."
    (List.length config.Pathgen.added_edges)
    config.Pathgen.n_paths;
  let grid = Chip.grid chip in
  List.iter
    (fun e -> Format.printf "  new channel %a@." (Grid.pp_edge grid) e)
    config.Pathgen.added_edges;

  let augmented = Pathgen.apply chip config in
  Format.printf "@.Augmented chip ('o' marks DFT valves):@.%s@." (Chip.render augmented);

  (* 2. Test cuts for stuck-at-1 defects *)
  let cuts =
    Cutgen.generate augmented ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port
  in
  Format.printf "Generated %d test cuts (valve sets closed to isolate the meter)@."
    (List.length cuts.Cutgen.cuts);
  List.iteri
    (fun i cut -> Format.printf "  cut %d closes valves %a@." i Fmt.(list ~sep:comma int) cut)
    cuts.Cutgen.cuts;

  (* 3. Exhaustive fault simulation of the complete vector suite *)
  let suite = Vectors.of_config config cuts in
  let report = Vectors.validate augmented suite in
  Format.printf "@.Vector suite: %d vectors; fault simulation: %a@." (Vectors.count suite)
    Coverage.pp report;
  if Coverage.complete report then
    Format.printf "All defects detectable with ONE pressure source and ONE meter.@."
  else Format.printf "Incomplete coverage - inspect the report above.@."
