(* The full codesign flow of the paper on a Table-1 combination: the IVD
   assay running on the IVD chip.

   The flow (Sec. 4.2):
   1. build a pool of DFT configurations with the ILP of Sec. 3;
   2. two-level PSO: outer = which configuration, inner = which original
      valve each DFT valve shares its control line with;
   3. every sharing scheme is validated by exhaustive fault simulation and
      scored by the application execution time on the re-wired chip.

   Run with:  dune exec examples/ivd_workflow.exe *)

module Chip = Mf_arch.Chip
module Codesign = Mfdft.Codesign
module Sharing = Mfdft.Sharing
module Vectors = Mf_testgen.Vectors

let () =
  let chip = Option.get (Mf_chips.Benchmarks.by_name "ivd_chip") in
  let app = Option.get (Mf_bioassay.Assays.by_name "ivd") in
  Format.printf "Chip under codesign:@.%s@." (Chip.render chip);
  Format.printf "Application: in-vitro diagnostics, %d operations@.@."
    (Mf_bioassay.Seqgraph.n_ops app);
  Format.printf "Running two-level PSO codesign (quick budgets)...@.";
  match Codesign.run ~params:Codesign.quick_params chip app with
  | Error f -> Format.printf "codesign failed: %s@." (Mf_util.Fail.to_string f)
  | Ok r ->
    Format.printf "@.Augmented architecture ('o' marks DFT valves):@.%s@."
      (Chip.render r.Codesign.augmented);
    Format.printf "DFT valves added           : %d@." r.Codesign.n_dft_valves;
    Format.printf "valves sharing control     : %d  (no new control ports)@."
      r.Codesign.n_shared;
    Format.printf "sharing scheme             : %a@." Sharing.pp r.Codesign.sharing;
    Format.printf "control lines before/after : %d / %d@."
      (Chip.n_controls r.Codesign.augmented)
      (Chip.n_controls r.Codesign.shared);
    Format.printf "test vectors (1 source, 1 meter): %d@." r.Codesign.n_vectors_dft;
    let pp_time ppf = function
      | Some t -> Fmt.pf ppf "%d s" t
      | None -> Fmt.pf ppf "n/a"
    in
    Format.printf "@.Execution time of the assay:@.";
    Format.printf "  original chip                 : %a@." pp_time r.Codesign.exec_original;
    Format.printf "  DFT, independent control      : %a   (Fig. 7 scenario)@." pp_time
      r.Codesign.exec_dft_unshared;
    Format.printf "  DFT + sharing, first valid    : %a@." pp_time r.Codesign.exec_dft_no_pso;
    Format.printf "  DFT + sharing, after PSO      : %a@." pp_time r.Codesign.exec_final;
    Format.printf "@.PSO convergence (global best per outer iteration):@.  ";
    List.iter
      (fun v -> if v = infinity then Format.printf "inf " else Format.printf "%.0f " v)
      r.Codesign.trace;
    Format.printf "@.";
    Format.printf "@.Final test suite still complete on the shared chip: %b@."
      (Vectors.is_valid r.Codesign.shared r.Codesign.suite);
    Format.printf "Flow runtime: %.1f s, %d fitness evaluations@." r.Codesign.runtime
      r.Codesign.evaluations
