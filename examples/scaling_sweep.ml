(* Scaling study: how does the cost of single-source single-meter
   testability grow with chip size?

   For a family of synthetic chips of increasing complexity this sweep
   reports the DFT overhead (added valves), the test program size (vector
   count and estimated application time) and the execution-time impact on a
   randomly generated assay.

   Run with:  dune exec examples/scaling_sweep.exe *)

module Chip = Mf_arch.Chip
module Synth = Mf_chips.Synth
module Synth_assay = Mf_bioassay.Synth_assay
module Pathgen = Mf_testgen.Pathgen
module Cutgen = Mf_testgen.Cutgen
module Vectors = Mf_testgen.Vectors
module Testtime = Mf_testgen.Testtime
module Scheduler = Mf_sched.Scheduler
module Control = Mf_control.Control
module Rng = Mf_util.Rng

let () =
  Format.printf "%-28s %8s %8s %8s %10s %10s %10s@." "chip (m,d,ports)" "valves" "+DFT"
    "vectors" "test[u]" "exec[s]" "exec+DFT";
  let rng = Rng.create ~seed:77 in
  List.iter
    (fun (mixers, detectors, ports) ->
      let spec = { Synth.default_spec with Synth.mixers; detectors; ports; pockets = 2 } in
      let chip = Synth.generate ~spec rng in
      let assay =
        Synth_assay.generate
          ~spec:{ Synth_assay.default_spec with Synth_assay.n_ops = 6 * (mixers + detectors) }
          (Rng.split rng)
      in
      let label = Printf.sprintf "synthetic (%d,%d,%d)" mixers detectors ports in
      match Pathgen.generate ~node_limit:400 chip with
      | Error f -> Format.printf "%-28s %s@." label (Mf_util.Fail.to_string f)
      | Ok config ->
        let aug = Pathgen.apply chip config in
        let cuts =
          Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port
        in
        let suite = Vectors.of_config config cuts in
        let suite = if Vectors.is_valid aug suite then suite else Mf_testgen.Repair.run aug suite in
        let layout = Control.synthesize aug in
        let test_time = Testtime.total aug layout (Vectors.vectors aug suite) in
        let exec = Scheduler.makespan chip assay in
        let exec_dft = Scheduler.makespan aug assay in
        let pp_o ppf = function Some v -> Fmt.pf ppf "%10d" v | None -> Fmt.pf ppf "%10s" "-" in
        Format.printf "%-28s %8d %8d %8d %10.0f %a %a@." label (Chip.n_valves chip)
          (List.length config.Pathgen.added_edges)
          (Vectors.count suite) test_time pp_o exec pp_o exec_dft)
    [ (2, 1, 2); (2, 2, 3); (3, 2, 3); (3, 3, 4); (4, 3, 4); (5, 4, 5) ]
