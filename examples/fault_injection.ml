(* Manufacturing-test dress rehearsal: inject random defects into the
   augmented IVD chip and watch the generated single-source single-meter
   vector suite catch every one of them.

   Run with:  dune exec examples/fault_injection.exe *)

module Chip = Mf_arch.Chip
module Grid = Mf_grid.Grid
module Rng = Mf_util.Rng
module Pathgen = Mf_testgen.Pathgen
module Cutgen = Mf_testgen.Cutgen
module Vectors = Mf_testgen.Vectors
module Vector = Mf_faults.Vector
module Fault = Mf_faults.Fault
module Pressure = Mf_faults.Pressure

let () =
  let chip = Option.get (Mf_chips.Benchmarks.by_name "ivd_chip") in
  let config =
    match Pathgen.generate chip with Ok c -> c | Error f -> failwith (Mf_util.Fail.to_string f)
  in
  let aug = Pathgen.apply chip config in
  let cuts =
    Cutgen.generate aug ~source:config.Pathgen.src_port ~meter:config.Pathgen.dst_port
  in
  let suite = Vectors.of_config config cuts in
  let suite = if Vectors.is_valid aug suite then suite else Mf_testgen.Repair.run aug suite in
  let vectors = Vectors.vectors aug suite in
  Format.printf "Chip: %a@.Suite: %d vectors@.@." Chip.pp aug (List.length vectors);

  let grid = Chip.grid aug in
  let rng = Rng.create ~seed:2024 in
  let universe = Array.of_list (Fault.all aug) in
  Format.printf "Injecting 10 random manufacturing defects:@.";
  for trial = 1 to 10 do
    let fault = Rng.pick rng universe in
    (* run the whole test program against the defective chip *)
    let caught_by =
      List.find_opt (fun vec -> Pressure.detects aug vec fault) vectors
    in
    (match caught_by with
     | Some vec ->
       let expected = Pressure.readings aug vec in
       let observed = Pressure.readings aug ~fault vec in
       Format.printf "  trial %2d: %a  -> caught by %s (meter read %a, expected %a)@." trial
         (Fault.pp aug) fault vec.Vector.label
         Fmt.(list ~sep:comma bool)
         observed
         Fmt.(list ~sep:comma bool)
         expected
     | None -> Format.printf "  trial %2d: %a  -> ESCAPED!@." trial (Fault.pp aug) fault)
  done;

  (* double defects: single-fault vectors usually catch those too *)
  Format.printf "@.Double-defect spot check (pairs of stuck-at-0):@.";
  let channel_edges = Mf_util.Bitset.elements (Chip.channel_edges aug) in
  let pairs =
    [ (List.nth channel_edges 0, List.nth channel_edges 5);
      (List.nth channel_edges 2, List.nth channel_edges 9) ]
  in
  List.iter
    (fun (e1, e2) ->
      (* simulate both blockages by composing conduction predicates: a
         vector detects the pair when some meter's reading changes *)
      let detects vec =
        let g = Grid.graph grid in
        let allowed e =
          e <> e2 && Pressure.conducts aug ~fault:(Fault.Stuck_at_0 e1)
                       ~active_lines:vec.Vector.active_lines e
        in
        let reach = Mf_graph.Traverse.reachable g ~allowed ~src:vec.Vector.source in
        let faulty = List.map (fun m -> Mf_util.Bitset.mem reach m) vec.Vector.meters in
        faulty <> Pressure.readings aug vec
      in
      let caught = List.exists detects vectors in
      Format.printf "  SA0@%a + SA0@%a -> %s@." (Grid.pp_edge grid) e1 (Grid.pp_edge grid) e2
        (if caught then "caught" else "escaped"))
    pairs
