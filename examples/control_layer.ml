(* The other half of the "no additional control ports" story: route the
   control layer of the RA30 chip before and after DFT + sharing and
   compare port counts, channel lengths and actuation skew.

   Run with:  dune exec examples/control_layer.exe *)

module Chip = Mf_arch.Chip
module Control = Mf_control.Control
module Pathgen = Mf_testgen.Pathgen

let describe label chip =
  let layout = Control.synthesize chip in
  Format.printf "%-28s %3d control ports, channel length %3d, worst skew %5.1f%s@." label
    (Control.n_ports layout) (Control.total_length layout) (Control.max_skew layout)
    (if layout.Control.unrouted = [] then ""
     else Printf.sprintf "  [%d lines not planar-routable!]" (List.length layout.Control.unrouted));
  layout

let () =
  let chip = Option.get (Mf_chips.Benchmarks.by_name "ra30_chip") in
  Format.printf "Flow layer:@.%s@." (Chip.render chip);
  let _ = describe "original" chip in
  match Pathgen.generate ~node_limit:400 chip with
  | Error f -> Format.printf "DFT generation failed: %s@." (Mf_util.Fail.to_string f)
  | Ok config ->
    let aug = Pathgen.apply chip config in
    let _ = describe "augmented, free control" aug in
    (* pair each DFT valve with a nearby original valve: nested pairs route
       planarly, unlike arbitrary cross-chip pairings *)
    let grid = Chip.grid aug in
    let g = Mf_grid.Grid.graph grid in
    let midpoint e =
      let a, b = Mf_graph.Graph.endpoints g e in
      let ax, ay = Mf_grid.Grid.coords grid a and bx, by = Mf_grid.Grid.coords grid b in
      (ax + bx, ay + by)
    in
    let scheme =
      Array.to_list (Chip.valves aug)
      |> List.filter_map (fun (v : Chip.valve) ->
          if not v.is_dft then None
          else begin
            let vx, vy = midpoint v.edge in
            let nearest =
              Array.to_list (Chip.valves aug)
              |> List.filter (fun (w : Chip.valve) -> not w.is_dft)
              |> List.map (fun (w : Chip.valve) ->
                  let wx, wy = midpoint w.edge in
                  (abs (vx - wx) + abs (vy - wy), w.valve_id))
              |> List.sort compare
            in
            match nearest with
            | (_, o) :: _ -> Some (v.valve_id, o)
            | [] -> None
          end)
    in
    let shared = Chip.with_sharing aug scheme in
    let layout = describe "augmented, locality sharing" shared in
    Format.printf "@.Sharing pairs (DFT valve -> original valve):@.";
    List.iter (fun (d, o) -> Format.printf "  v%d -> v%d@." d o) scheme;
    Format.printf "@.Per-line actuation skew on the shared chip:@.";
    List.iter
      (fun (r : Control.route) ->
        match Control.skew layout ~line:r.Control.line with
        | Some s when s > 0. -> Format.printf "  line %d: skew %.1f@." r.Control.line s
        | Some _ | None -> ())
      layout.Control.routes
